//! Balanced k-d tree for fixed-radius neighbor search over galaxy
//! positions.
//!
//! The Galactos algorithm spends its outer loop gathering, for each
//! *primary* galaxy, all *secondaries* within `Rmax` (200 Mpc/h in the
//! paper). This crate provides the node-local spatial index used for that
//! gather:
//!
//! * a **median-split balanced k-d tree** built over an arbitrary point
//!   set, with points reordered into contiguous leaf storage for cache
//!   locality;
//! * **"marked" nodes** carrying cached point counts and bounding boxes —
//!   the enhancement of Gray & Moore / March (paper §2.1) that lets whole
//!   subtrees be accepted (no per-point distance tests) when their
//!   bounding box lies inside the query sphere, and lets counting queries
//!   run without touching points at all;
//! * **generic precision**: the same tree code instantiates at `f32`
//!   (the paper's mixed-precision mode — "the k-d tree search is
//!   performed in single precision due to its insensitivity to the
//!   precision of galaxy locations") or `f64`;
//! * sphere **range queries** (visitor and collecting forms), **counting
//!   queries**, **k-nearest-neighbor** queries and **periodic-box**
//!   variants;
//! * **node-to-node block queries** (paper §3.2): leaf enumeration
//!   ([`KdTree::for_each_leaf`]) and a pruned walk that reports whole
//!   contiguous slot *ranges* within reach of a query bounding box
//!   ([`KdTree::for_each_within_of_aabb`]), so a caller can gather the
//!   candidate secondaries of an entire leaf of primaries at once;
//! * a brute-force reference searcher used by tests and benchmarks.

#![forbid(unsafe_code)]

pub mod brute;
pub mod knn;
pub mod scalar;
pub mod tree;

pub use brute::BruteForce;
pub use scalar::Scalar;
pub use tree::{KdTree, LeafInfo, TreeConfig, TreeStats};
