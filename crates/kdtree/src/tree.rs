//! The balanced k-d tree: construction and sphere queries.

use crate::scalar::{distance_sq, Scalar};
use galactos_math::Vec3;

/// Construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct TreeConfig {
    /// Maximum number of points per leaf. Small leaves prune better;
    /// large leaves scan better. 32 is a good default for the gather
    /// workload (secondaries are consumed in buckets of 128 anyway).
    pub leaf_size: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { leaf_size: 32 }
    }
}

#[derive(Clone, Copy, Debug)]
enum NodeKind<S> {
    /// `axis`/`split` record the partition plane (kept for diagnostics
    /// and future ordered traversals; pruning uses the cached bboxes).
    #[allow(dead_code)]
    Internal {
        axis: u8,
        split: S,
        left: u32,
        right: u32,
    },
    Leaf,
}

#[derive(Clone, Copy, Debug)]
struct Node<S> {
    lo: [S; 3],
    hi: [S; 3],
    /// Contiguous range of reordered point slots covered by this subtree.
    start: u32,
    end: u32,
    kind: NodeKind<S>,
}

impl<S: Scalar> Node<S> {
    #[inline]
    fn count(&self) -> u32 {
        self.end - self.start
    }

    /// Squared distance from `p` to the nearest point of the bbox.
    #[inline]
    fn min_dist_sq(&self, p: [S; 3]) -> S {
        let mut acc = S::ZERO;
        for ((&v, &lo), &hi) in p.iter().zip(&self.lo).zip(&self.hi) {
            let d = if v < lo {
                lo.sub(v)
            } else if v > hi {
                v.sub(hi)
            } else {
                S::ZERO
            };
            acc = acc.add(d.mul(d));
        }
        acc
    }

    /// Squared distance from `p` to the farthest corner of the bbox.
    #[inline]
    fn max_dist_sq(&self, p: [S; 3]) -> S {
        let mut acc = S::ZERO;
        for ((&v, &lo), &hi) in p.iter().zip(&self.lo).zip(&self.hi) {
            let a = if v > lo { v.sub(lo) } else { lo.sub(v) };
            let b = if v > hi { v.sub(hi) } else { hi.sub(v) };
            let d = a.fmax(b);
            acc = acc.add(d.mul(d));
        }
        acc
    }
}

/// Summary statistics of a built tree (the "marked" metadata made
/// visible; also used by the runtime-breakdown benchmark).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TreeStats {
    pub num_points: usize,
    pub num_nodes: usize,
    pub num_leaves: usize,
    pub max_depth: usize,
    pub mean_leaf_size: f64,
}

/// A balanced k-d tree over 3-D points with scalar type `S`.
///
/// Points are reordered into contiguous per-leaf storage at build time;
/// every query reports *original* point indices (`u32`).
#[derive(Clone, Debug)]
pub struct KdTree<S: Scalar> {
    nodes: Vec<Node<S>>,
    coords: Vec<[S; 3]>,
    ids: Vec<u32>,
    leaf_size: usize,
    max_depth: usize,
}

impl<S: Scalar> KdTree<S> {
    /// Build a tree over `points` (converted from `f64` to `S`).
    pub fn build(points: &[Vec3], config: TreeConfig) -> Self {
        assert!(config.leaf_size >= 1, "leaf_size must be >= 1");
        assert!(
            points.len() < u32::MAX as usize,
            "point count exceeds u32 index space"
        );
        let mut coords: Vec<[S; 3]> = points
            .iter()
            .map(|p| [S::from_f64(p.x), S::from_f64(p.y), S::from_f64(p.z)])
            .collect();
        let mut ids: Vec<u32> = (0..points.len() as u32).collect();
        let mut tree = KdTree {
            nodes: Vec::new(),
            coords: Vec::new(),
            ids: Vec::new(),
            leaf_size: config.leaf_size,
            max_depth: 0,
        };
        if !points.is_empty() {
            tree.nodes.reserve(2 * points.len() / config.leaf_size + 2);
            tree.build_node(&mut coords, &mut ids, 0, points.len(), 1);
        }
        tree.coords = coords;
        tree.ids = ids;
        tree
    }

    /// Recursively build the subtree over `coords[start..end]`, returning
    /// its node index.
    fn build_node(
        &mut self,
        coords: &mut [[S; 3]],
        ids: &mut [u32],
        start: usize,
        end: usize,
        depth: usize,
    ) -> u32 {
        self.max_depth = self.max_depth.max(depth);
        let slice = &coords[start..end];
        let mut lo = [S::MAX; 3];
        let mut hi = [S::from_f64(f64::MIN); 3];
        for p in slice {
            for ax in 0..3 {
                lo[ax] = lo[ax].fmin(p[ax]);
                hi[ax] = hi[ax].fmax(p[ax]);
            }
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            lo,
            hi,
            start: start as u32,
            end: end as u32,
            kind: NodeKind::Leaf,
        });
        if end - start <= self.leaf_size {
            return idx;
        }

        // Split along the longest axis of the *actual* point bounds at the
        // median — this is what balances the tree regardless of clustering.
        let mut axis = 0usize;
        let mut best = hi[0].sub(lo[0]);
        for ax in 1..3 {
            let ext = hi[ax].sub(lo[ax]);
            if ext > best {
                best = ext;
                axis = ax;
            }
        }
        let mid = (end - start) / 2;
        // Partition points and carry ids along by sorting index pairs.
        {
            let seg_coords = &mut coords[start..end];
            let seg_ids = &mut ids[start..end];
            // select_nth over a permutation to keep the two arrays in sync
            let mut perm: Vec<u32> = (0..seg_coords.len() as u32).collect();
            perm.select_nth_unstable_by(mid, |&a, &b| {
                seg_coords[a as usize][axis]
                    .partial_cmp(&seg_coords[b as usize][axis])
                    .unwrap()
            });
            apply_permutation(seg_coords, seg_ids, &perm);
        }
        let split = coords[start + mid][axis];
        let left = self.build_node(coords, ids, start, start + mid, depth + 1);
        let right = self.build_node(coords, ids, start + mid, end, depth + 1);
        self.nodes[idx as usize].kind = NodeKind::Internal {
            axis: axis as u8,
            split,
            left,
            right,
        };
        idx
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The reordered coordinates (leaf-contiguous), for diagnostics.
    #[inline]
    pub fn coords(&self) -> &[[S; 3]] {
        &self.coords
    }

    /// Original index of the point in reordered slot `slot`.
    #[inline]
    pub fn id_at(&self, slot: usize) -> u32 {
        self.ids[slot]
    }

    pub fn stats(&self) -> TreeStats {
        let num_leaves = self
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Leaf))
            .count();
        TreeStats {
            num_points: self.ids.len(),
            num_nodes: self.nodes.len(),
            num_leaves,
            max_depth: self.max_depth,
            mean_leaf_size: if num_leaves == 0 {
                0.0
            } else {
                self.ids.len() as f64 / num_leaves as f64
            },
        }
    }

    #[inline]
    fn to_s(p: Vec3) -> [S; 3] {
        [S::from_f64(p.x), S::from_f64(p.y), S::from_f64(p.z)]
    }

    /// Visit the original index of every point within `radius` of
    /// `center` (inclusive boundary, distances evaluated in `S`).
    pub fn for_each_within<F: FnMut(u32)>(&self, center: Vec3, radius: f64, f: &mut F) {
        if self.nodes.is_empty() {
            return;
        }
        let c = Self::to_s(center);
        let r = S::from_f64(radius);
        let r2 = r.mul(r);
        self.range_rec(0, c, r2, f);
    }

    fn range_rec<F: FnMut(u32)>(&self, node: u32, c: [S; 3], r2: S, f: &mut F) {
        let n = &self.nodes[node as usize];
        if n.min_dist_sq(c) > r2 {
            return;
        }
        // Marked-tree fast path: the whole subtree is inside the sphere.
        if n.max_dist_sq(c) <= r2 {
            for slot in n.start..n.end {
                f(self.ids[slot as usize]);
            }
            return;
        }
        match n.kind {
            NodeKind::Leaf => {
                for slot in n.start..n.end {
                    if distance_sq(self.coords[slot as usize], c) <= r2 {
                        f(self.ids[slot as usize]);
                    }
                }
            }
            NodeKind::Internal { left, right, .. } => {
                self.range_rec(left, c, r2, f);
                self.range_rec(right, c, r2, f);
            }
        }
    }

    /// Collect all original indices within `radius` of `center`.
    pub fn within(&self, center: Vec3, radius: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_within(center, radius, &mut |id| out.push(id));
        out
    }

    /// Count points within `radius` of `center` without reporting them —
    /// uses cached subtree counts on fully-contained nodes, so the cost
    /// is proportional to the sphere *surface*, not its volume.
    pub fn count_within(&self, center: Vec3, radius: f64) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        let c = Self::to_s(center);
        let r = S::from_f64(radius);
        self.count_rec(0, c, r.mul(r))
    }

    fn count_rec(&self, node: u32, c: [S; 3], r2: S) -> usize {
        let n = &self.nodes[node as usize];
        if n.min_dist_sq(c) > r2 {
            return 0;
        }
        if n.max_dist_sq(c) <= r2 {
            return n.count() as usize;
        }
        match n.kind {
            NodeKind::Leaf => (n.start..n.end)
                .filter(|&slot| distance_sq(self.coords[slot as usize], c) <= r2)
                .count(),
            NodeKind::Internal { left, right, .. } => {
                self.count_rec(left, c, r2) + self.count_rec(right, c, r2)
            }
        }
    }

    /// Periodic-box range query: visits every point whose *minimum image*
    /// distance to `center` is within `radius`. Requires
    /// `radius <= box_len / 2` so each point matches at most one image.
    pub fn for_each_within_periodic<F: FnMut(u32)>(
        &self,
        center: Vec3,
        radius: f64,
        box_len: f64,
        f: &mut F,
    ) {
        assert!(
            radius <= box_len * 0.5,
            "periodic query requires radius <= box_len/2"
        );
        // Query the 27 images of the center whose sphere can reach [0, L)^3.
        for ix in -1i32..=1 {
            for iy in -1i32..=1 {
                for iz in -1i32..=1 {
                    let shifted = Vec3::new(
                        center.x + ix as f64 * box_len,
                        center.y + iy as f64 * box_len,
                        center.z + iz as f64 * box_len,
                    );
                    // Skip images that cannot intersect the box.
                    if shifted.x + radius < 0.0
                        || shifted.x - radius > box_len
                        || shifted.y + radius < 0.0
                        || shifted.y - radius > box_len
                        || shifted.z + radius < 0.0
                        || shifted.z - radius > box_len
                    {
                        continue;
                    }
                    self.for_each_within(shifted, radius, f);
                }
            }
        }
    }

    /// Internal accessors for the kNN module.
    #[inline]
    pub(crate) fn node_min_dist_sq(&self, node: u32, c: [S; 3]) -> S {
        self.nodes[node as usize].min_dist_sq(c)
    }

    #[inline]
    pub(crate) fn node_children(&self, node: u32) -> Option<(u32, u32)> {
        match self.nodes[node as usize].kind {
            NodeKind::Internal { left, right, .. } => Some((left, right)),
            NodeKind::Leaf => None,
        }
    }

    #[inline]
    pub(crate) fn node_range(&self, node: u32) -> (u32, u32) {
        let n = &self.nodes[node as usize];
        (n.start, n.end)
    }

    #[inline]
    pub(crate) fn slot_coord(&self, slot: u32) -> [S; 3] {
        self.coords[slot as usize]
    }

    #[inline]
    pub(crate) fn convert_point(p: Vec3) -> [S; 3] {
        Self::to_s(p)
    }
}

/// Apply permutation `perm` (values are indices into the segment) to both
/// arrays simultaneously, using scratch buffers.
fn apply_permutation<S: Copy>(coords: &mut [[S; 3]], ids: &mut [u32], perm: &[u32]) {
    let tmp_coords: Vec<[S; 3]> = perm.iter().map(|&i| coords[i as usize]).collect();
    let tmp_ids: Vec<u32> = perm.iter().map(|&i| ids[i as usize]).collect();
    coords.copy_from_slice(&tmp_coords);
    ids.copy_from_slice(&tmp_ids);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForce;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn random_points(n: usize, box_len: f64, seed: u64) -> Vec<Vec3> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.random_range(0.0..box_len),
                    rng.random_range(0.0..box_len),
                    rng.random_range(0.0..box_len),
                )
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let tree = KdTree::<f64>::build(&[], TreeConfig::default());
        assert!(tree.is_empty());
        assert_eq!(tree.within(Vec3::ZERO, 10.0), Vec::<u32>::new());
        assert_eq!(tree.count_within(Vec3::ZERO, 10.0), 0);
    }

    #[test]
    fn single_point() {
        let tree = KdTree::<f64>::build(&[Vec3::splat(1.0)], TreeConfig::default());
        assert_eq!(tree.within(Vec3::ZERO, 2.0), vec![0]);
        assert_eq!(tree.within(Vec3::ZERO, 1.0), Vec::<u32>::new());
        // boundary is inclusive
        assert_eq!(tree.within(Vec3::ZERO, 3f64.sqrt() + 1e-12), vec![0]);
    }

    #[test]
    fn matches_brute_force_f64() {
        let pts = random_points(500, 100.0, 7);
        let tree = KdTree::<f64>::build(&pts, TreeConfig { leaf_size: 8 });
        let brute = BruteForce::new(&pts);
        for (i, &c) in pts.iter().enumerate().step_by(37) {
            for radius in [0.0, 5.0, 20.0, 60.0, 200.0] {
                let mut got = tree.within(c, radius);
                let mut want = brute.within(c, radius);
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "center {i} radius {radius}");
                assert_eq!(tree.count_within(c, radius), want.len());
            }
        }
    }

    #[test]
    fn f32_tree_close_to_f64() {
        // Mixed precision: results may differ only for pairs within a few
        // ULPs of the boundary. With a well-separated radius they agree.
        let pts = random_points(400, 50.0, 11);
        let t64 = KdTree::<f64>::build(&pts, TreeConfig::default());
        let t32 = KdTree::<f32>::build(&pts, TreeConfig::default());
        let mut diff_total = 0usize;
        for &c in pts.iter().step_by(17) {
            let a = t64.within(c, 12.0);
            let b = t32.within(c, 12.0);
            let sa: std::collections::BTreeSet<_> = a.iter().collect();
            let sb: std::collections::BTreeSet<_> = b.iter().collect();
            diff_total += sa.symmetric_difference(&sb).count();
        }
        assert!(
            diff_total <= 2,
            "f32 tree diverged: {diff_total} boundary flips"
        );
    }

    #[test]
    fn clustered_points_stay_balanced() {
        // A pathological distribution: two tight clusters far apart.
        let mut pts = random_points(256, 1.0, 3);
        pts.extend(
            random_points(256, 1.0, 4)
                .iter()
                .map(|p| *p + Vec3::splat(1000.0)),
        );
        let tree = KdTree::<f64>::build(&pts, TreeConfig { leaf_size: 4 });
        let stats = tree.stats();
        // Balanced median split: depth ≈ log2(512/4) + 1 = 8, allow slack.
        assert!(stats.max_depth <= 10, "depth {}", stats.max_depth);
        assert_eq!(stats.num_points, 512);
    }

    #[test]
    fn duplicate_points_handled() {
        let pts = vec![Vec3::splat(5.0); 100];
        let tree = KdTree::<f64>::build(&pts, TreeConfig { leaf_size: 8 });
        assert_eq!(tree.within(Vec3::splat(5.0), 0.1).len(), 100);
        assert_eq!(tree.count_within(Vec3::splat(5.0), 0.1), 100);
        assert!(
            tree.stats().max_depth < 30,
            "no infinite split on duplicates"
        );
    }

    #[test]
    fn periodic_query_finds_wrapped_neighbors() {
        let box_len = 100.0;
        let pts = vec![
            Vec3::new(1.0, 50.0, 50.0),
            Vec3::new(99.0, 50.0, 50.0),
            Vec3::new(50.0, 50.0, 50.0),
        ];
        let tree = KdTree::<f64>::build(&pts, TreeConfig::default());
        // Non-periodic: point 1 is 98 away from point 0.
        assert_eq!(tree.within(pts[0], 10.0).len(), 1); // itself
                                                        // Periodic: minimum-image distance is 2.
        let mut found = Vec::new();
        tree.for_each_within_periodic(pts[0], 10.0, box_len, &mut |id| found.push(id));
        found.sort_unstable();
        assert_eq!(found, vec![0, 1]);
    }

    #[test]
    fn periodic_matches_brute_minimum_image() {
        let box_len = 20.0;
        let pts = random_points(300, box_len, 23);
        let tree = KdTree::<f64>::build(&pts, TreeConfig { leaf_size: 8 });
        for &c in pts.iter().step_by(29) {
            let radius = 6.0;
            let mut got = Vec::new();
            tree.for_each_within_periodic(c, radius, box_len, &mut |id| got.push(id));
            got.sort_unstable();
            let mut want: Vec<u32> = (0..pts.len() as u32)
                .filter(|&i| pts[i as usize].periodic_delta(c, box_len).norm() <= radius)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn stats_are_consistent() {
        let pts = random_points(1000, 10.0, 5);
        let tree = KdTree::<f64>::build(&pts, TreeConfig { leaf_size: 16 });
        let s = tree.stats();
        assert_eq!(s.num_points, 1000);
        assert!(s.num_leaves >= 1000 / 16);
        assert!(s.mean_leaf_size <= 16.0);
        assert!(s.num_nodes >= 2 * s.num_leaves - 1);
    }
}
