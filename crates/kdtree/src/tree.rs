//! The balanced k-d tree: construction and sphere queries.

use crate::scalar::{distance_sq, Scalar};
use galactos_math::Vec3;

/// Construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct TreeConfig {
    /// Maximum number of points per leaf. Small leaves prune better;
    /// large leaves scan better. 32 is a good default for the gather
    /// workload (secondaries are consumed in buckets of 128 anyway).
    pub leaf_size: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { leaf_size: 32 }
    }
}

#[derive(Clone, Copy, Debug)]
enum NodeKind<S> {
    /// `axis`/`split` record the partition plane (kept for diagnostics
    /// and future ordered traversals; pruning uses the cached bboxes).
    #[allow(dead_code)]
    Internal {
        axis: u8,
        split: S,
        left: u32,
        right: u32,
    },
    Leaf,
}

#[derive(Clone, Copy, Debug)]
struct Node<S> {
    lo: [S; 3],
    hi: [S; 3],
    /// Contiguous range of reordered point slots covered by this subtree.
    start: u32,
    end: u32,
    kind: NodeKind<S>,
}

impl<S: Scalar> Node<S> {
    #[inline]
    fn count(&self) -> u32 {
        self.end - self.start
    }

    /// Squared distance from the nearest point of this bbox to the
    /// nearest point of the axis-aligned box `[qlo, qhi]` (zero when
    /// they intersect).
    #[inline]
    fn min_dist_sq_to_aabb(&self, qlo: [S; 3], qhi: [S; 3]) -> S {
        let mut acc = S::ZERO;
        for ax in 0..3 {
            let gap = if qlo[ax] > self.hi[ax] {
                qlo[ax].sub(self.hi[ax])
            } else if self.lo[ax] > qhi[ax] {
                self.lo[ax].sub(qhi[ax])
            } else {
                S::ZERO
            };
            acc = acc.add(gap.mul(gap));
        }
        acc
    }

    /// Squared distance from the *farthest* point of this bbox to the
    /// nearest point of `[qlo, qhi]` — when this is ≤ r², every point in
    /// the subtree lies within `r` of the query box.
    #[inline]
    fn max_dist_sq_to_aabb(&self, qlo: [S; 3], qhi: [S; 3]) -> S {
        let mut acc = S::ZERO;
        for ax in 0..3 {
            // Distance from v to [qlo, qhi] is max(0, qlo−v, v−qhi),
            // maximized over v ∈ [lo, hi] at an endpoint.
            let a = qlo[ax].sub(self.lo[ax]); // farthest-below endpoint
            let b = self.hi[ax].sub(qhi[ax]); // farthest-above endpoint
            let gap = a.fmax(b).fmax(S::ZERO);
            acc = acc.add(gap.mul(gap));
        }
        acc
    }

    /// Squared distance from `p` to the nearest point of the bbox.
    #[inline]
    fn min_dist_sq(&self, p: [S; 3]) -> S {
        let mut acc = S::ZERO;
        for ((&v, &lo), &hi) in p.iter().zip(&self.lo).zip(&self.hi) {
            let d = if v < lo {
                lo.sub(v)
            } else if v > hi {
                v.sub(hi)
            } else {
                S::ZERO
            };
            acc = acc.add(d.mul(d));
        }
        acc
    }

    /// Squared distance from `p` to the farthest corner of the bbox.
    #[inline]
    fn max_dist_sq(&self, p: [S; 3]) -> S {
        let mut acc = S::ZERO;
        for ((&v, &lo), &hi) in p.iter().zip(&self.lo).zip(&self.hi) {
            let a = if v > lo { v.sub(lo) } else { lo.sub(v) };
            let b = if v > hi { v.sub(hi) } else { hi.sub(v) };
            let d = a.fmax(b);
            acc = acc.add(d.mul(d));
        }
        acc
    }
}

/// One leaf of the tree as seen by block-traversal callers: the
/// contiguous range of reordered point *slots* it owns and its tight
/// bounding box (converted to `f64` regardless of tree precision).
///
/// Slots index the tree's leaf-contiguous storage; map a slot back to
/// the original point with [`KdTree::id_at`]. Leaves partition
/// `0..len()` exactly, so iterating leaves visits every point once.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LeafInfo {
    pub start: u32,
    pub end: u32,
    pub lo: Vec3,
    pub hi: Vec3,
}

impl LeafInfo {
    /// Number of points in this leaf.
    #[inline]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Center of the leaf's bounding box.
    #[inline]
    pub fn center(&self) -> Vec3 {
        Vec3::new(
            0.5 * (self.lo.x + self.hi.x),
            0.5 * (self.lo.y + self.hi.y),
            0.5 * (self.lo.z + self.hi.z),
        )
    }

    /// Half the bbox diagonal: every point of the leaf is within this
    /// radius of [`LeafInfo::center`].
    #[inline]
    pub fn radius(&self) -> f64 {
        let d = Vec3::new(
            self.hi.x - self.lo.x,
            self.hi.y - self.lo.y,
            self.hi.z - self.lo.z,
        );
        0.5 * d.norm()
    }
}

/// Summary statistics of a built tree (the "marked" metadata made
/// visible; also used by the runtime-breakdown benchmark).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TreeStats {
    pub num_points: usize,
    pub num_nodes: usize,
    pub num_leaves: usize,
    pub max_depth: usize,
    pub mean_leaf_size: f64,
}

/// A balanced k-d tree over 3-D points with scalar type `S`.
///
/// Points are reordered into contiguous per-leaf storage at build time;
/// every query reports *original* point indices (`u32`).
#[derive(Clone, Debug)]
pub struct KdTree<S: Scalar> {
    nodes: Vec<Node<S>>,
    coords: Vec<[S; 3]>,
    ids: Vec<u32>,
    leaf_size: usize,
    max_depth: usize,
}

impl<S: Scalar> KdTree<S> {
    /// Build a tree over `points` (converted from `f64` to `S`).
    pub fn build(points: &[Vec3], config: TreeConfig) -> Self {
        assert!(config.leaf_size >= 1, "leaf_size must be >= 1");
        assert!(
            points.len() < u32::MAX as usize,
            "point count exceeds u32 index space"
        );
        let mut coords: Vec<[S; 3]> = points
            .iter()
            .map(|p| [S::from_f64(p.x), S::from_f64(p.y), S::from_f64(p.z)])
            .collect();
        let mut ids: Vec<u32> = (0..points.len() as u32).collect();
        let mut tree = KdTree {
            nodes: Vec::new(),
            coords: Vec::new(),
            ids: Vec::new(),
            leaf_size: config.leaf_size,
            max_depth: 0,
        };
        if !points.is_empty() {
            tree.nodes.reserve(2 * points.len() / config.leaf_size + 2);
            tree.build_node(&mut coords, &mut ids, 0, points.len(), 1);
        }
        tree.coords = coords;
        tree.ids = ids;
        tree
    }

    /// Recursively build the subtree over `coords[start..end]`, returning
    /// its node index.
    fn build_node(
        &mut self,
        coords: &mut [[S; 3]],
        ids: &mut [u32],
        start: usize,
        end: usize,
        depth: usize,
    ) -> u32 {
        self.max_depth = self.max_depth.max(depth);
        let slice = &coords[start..end];
        let mut lo = [S::MAX; 3];
        let mut hi = [S::from_f64(f64::MIN); 3];
        for p in slice {
            for ax in 0..3 {
                lo[ax] = lo[ax].fmin(p[ax]);
                hi[ax] = hi[ax].fmax(p[ax]);
            }
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            lo,
            hi,
            start: start as u32,
            end: end as u32,
            kind: NodeKind::Leaf,
        });
        if end - start <= self.leaf_size {
            return idx;
        }

        // Split along the longest axis of the *actual* point bounds at the
        // median — this is what balances the tree regardless of clustering.
        let mut axis = 0usize;
        let mut best = hi[0].sub(lo[0]);
        for ax in 1..3 {
            let ext = hi[ax].sub(lo[ax]);
            if ext > best {
                best = ext;
                axis = ax;
            }
        }
        let mid = (end - start) / 2;
        // Partition points and carry ids along by sorting index pairs.
        {
            let seg_coords = &mut coords[start..end];
            let seg_ids = &mut ids[start..end];
            // select_nth over a permutation to keep the two arrays in sync
            let mut perm: Vec<u32> = (0..seg_coords.len() as u32).collect();
            perm.select_nth_unstable_by(mid, |&a, &b| {
                seg_coords[a as usize][axis]
                    .partial_cmp(&seg_coords[b as usize][axis])
                    .unwrap()
            });
            apply_permutation(seg_coords, seg_ids, &perm);
        }
        let split = coords[start + mid][axis];
        let left = self.build_node(coords, ids, start, start + mid, depth + 1);
        let right = self.build_node(coords, ids, start + mid, end, depth + 1);
        self.nodes[idx as usize].kind = NodeKind::Internal {
            axis: axis as u8,
            split,
            left,
            right,
        };
        idx
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The reordered coordinates (leaf-contiguous), for diagnostics.
    #[inline]
    pub fn coords(&self) -> &[[S; 3]] {
        &self.coords
    }

    /// Original index of the point in reordered slot `slot`.
    #[inline]
    pub fn id_at(&self, slot: usize) -> u32 {
        self.ids[slot]
    }

    pub fn stats(&self) -> TreeStats {
        let num_leaves = self
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Leaf))
            .count();
        TreeStats {
            num_points: self.ids.len(),
            num_nodes: self.nodes.len(),
            num_leaves,
            max_depth: self.max_depth,
            mean_leaf_size: if num_leaves == 0 {
                0.0
            } else {
                self.ids.len() as f64 / num_leaves as f64
            },
        }
    }

    #[inline]
    fn to_s(p: Vec3) -> [S; 3] {
        [S::from_f64(p.x), S::from_f64(p.y), S::from_f64(p.z)]
    }

    /// Visit the original index of every point within `radius` of
    /// `center` (inclusive boundary, distances evaluated in `S`).
    pub fn for_each_within<F: FnMut(u32)>(&self, center: Vec3, radius: f64, f: &mut F) {
        if self.nodes.is_empty() {
            return;
        }
        let c = Self::to_s(center);
        let r = S::from_f64(radius);
        let r2 = r.mul(r);
        self.range_rec(0, c, r2, f);
    }

    fn range_rec<F: FnMut(u32)>(&self, node: u32, c: [S; 3], r2: S, f: &mut F) {
        let n = &self.nodes[node as usize];
        if n.min_dist_sq(c) > r2 {
            return;
        }
        // Marked-tree fast path: the whole subtree is inside the sphere.
        if n.max_dist_sq(c) <= r2 {
            for slot in n.start..n.end {
                f(self.ids[slot as usize]);
            }
            return;
        }
        match n.kind {
            NodeKind::Leaf => {
                for slot in n.start..n.end {
                    if distance_sq(self.coords[slot as usize], c) <= r2 {
                        f(self.ids[slot as usize]);
                    }
                }
            }
            NodeKind::Internal { left, right, .. } => {
                self.range_rec(left, c, r2, f);
                self.range_rec(right, c, r2, f);
            }
        }
    }

    /// Collect all original indices within `radius` of `center`.
    pub fn within(&self, center: Vec3, radius: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_within(center, radius, &mut |id| out.push(id));
        out
    }

    /// Count points within `radius` of `center` without reporting them —
    /// uses cached subtree counts on fully-contained nodes, so the cost
    /// is proportional to the sphere *surface*, not its volume.
    pub fn count_within(&self, center: Vec3, radius: f64) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        let c = Self::to_s(center);
        let r = S::from_f64(radius);
        self.count_rec(0, c, r.mul(r))
    }

    fn count_rec(&self, node: u32, c: [S; 3], r2: S) -> usize {
        let n = &self.nodes[node as usize];
        if n.min_dist_sq(c) > r2 {
            return 0;
        }
        if n.max_dist_sq(c) <= r2 {
            return n.count() as usize;
        }
        match n.kind {
            NodeKind::Leaf => (n.start..n.end)
                .filter(|&slot| distance_sq(self.coords[slot as usize], c) <= r2)
                .count(),
            NodeKind::Internal { left, right, .. } => {
                self.count_rec(left, c, r2) + self.count_rec(right, c, r2)
            }
        }
    }

    /// Periodic-box range query: visits every point whose *minimum image*
    /// distance to `center` is within `radius`. Requires
    /// `radius <= box_len / 2` so each point matches at most one image.
    pub fn for_each_within_periodic<F: FnMut(u32)>(
        &self,
        center: Vec3,
        radius: f64,
        box_len: f64,
        f: &mut F,
    ) {
        assert!(
            radius <= box_len * 0.5,
            "periodic query requires radius <= box_len/2"
        );
        // Query the 27 images of the center whose sphere can reach [0, L)^3.
        for_each_reachable_image(center, center, radius, box_len, &mut |slo, _shi| {
            self.for_each_within(slo, radius, f)
        });
    }

    /// Visit every leaf in ascending slot order. Leaves partition the
    /// slot space `0..len()`, so this enumerates every point exactly
    /// once; block-traversal drivers use it to walk primaries one whole
    /// leaf at a time (paper §3.2's node-to-node formulation).
    pub fn for_each_leaf<F: FnMut(LeafInfo)>(&self, f: &mut F) {
        // Nodes are stored in preorder with the left subtree first, so a
        // linear scan yields leaves in ascending `start` order.
        for n in &self.nodes {
            if matches!(n.kind, NodeKind::Leaf) {
                f(LeafInfo {
                    start: n.start,
                    end: n.end,
                    lo: Vec3::new(n.lo[0].to_f64(), n.lo[1].to_f64(), n.lo[2].to_f64()),
                    hi: Vec3::new(n.hi[0].to_f64(), n.hi[1].to_f64(), n.hi[2].to_f64()),
                });
            }
        }
    }

    /// Collect every leaf (ascending slot order) into a vector.
    pub fn collect_leaves(&self) -> Vec<LeafInfo> {
        let mut out = Vec::new();
        self.for_each_leaf(&mut |leaf| out.push(leaf));
        out
    }

    /// Node-to-node pruned walk (paper §3.2): visit contiguous slot
    /// ranges `(start, end)` that together cover **every** point within
    /// `radius` of the axis-aligned box `[lo, hi]` — the query leaf's
    /// bounding box inflated by Rmax. Subtrees whose bounding box is
    /// farther than `radius` from the query box are pruned via the
    /// box-to-box minimum distance; subtrees entirely within `radius`
    /// are emitted as one whole range without descending further.
    ///
    /// The union of emitted ranges is a *superset* of the exact result
    /// (whole leaves are emitted unfiltered); callers are expected to
    /// prefilter per point. Ranges are disjoint and ascending.
    pub fn for_each_within_of_aabb<F: FnMut(u32, u32)>(
        &self,
        lo: Vec3,
        hi: Vec3,
        radius: f64,
        f: &mut F,
    ) {
        if self.nodes.is_empty() {
            return;
        }
        let qlo = Self::to_s(lo);
        let qhi = Self::to_s(hi);
        let r = S::from_f64(radius);
        self.aabb_rec(0, qlo, qhi, r.mul(r), f);
    }

    fn aabb_rec<F: FnMut(u32, u32)>(&self, node: u32, qlo: [S; 3], qhi: [S; 3], r2: S, f: &mut F) {
        let n = &self.nodes[node as usize];
        if n.min_dist_sq_to_aabb(qlo, qhi) > r2 {
            return;
        }
        // Marked-tree fast path: the whole subtree is within reach of
        // the query box — emit its range without descending.
        if n.max_dist_sq_to_aabb(qlo, qhi) <= r2 {
            f(n.start, n.end);
            return;
        }
        match n.kind {
            NodeKind::Leaf => f(n.start, n.end),
            NodeKind::Internal { left, right, .. } => {
                self.aabb_rec(left, qlo, qhi, r2, f);
                self.aabb_rec(right, qlo, qhi, r2, f);
            }
        }
    }

    /// Periodic variant of [`KdTree::for_each_within_of_aabb`]: covers
    /// every point whose *minimum-image* distance to the box `[lo, hi]`
    /// is within `radius`, by walking the images of the query box that
    /// can reach `[0, box_len)³`.
    ///
    /// Unlike the per-point periodic query, the effective reach
    /// (`radius` + query-box diagonal) may exceed half the box, so the
    /// same point can be covered through more than one image: emitted
    /// ranges may **overlap across images** (within one image they are
    /// disjoint and ascending). Callers must deduplicate — e.g. by
    /// coalescing ranges — before treating slots as unique.
    pub fn for_each_within_of_aabb_periodic<F: FnMut(u32, u32)>(
        &self,
        lo: Vec3,
        hi: Vec3,
        radius: f64,
        box_len: f64,
        f: &mut F,
    ) {
        for_each_reachable_image(lo, hi, radius, box_len, &mut |slo, shi| {
            self.for_each_within_of_aabb(slo, shi, radius, f)
        });
    }

    /// Internal accessors for the kNN module.
    #[inline]
    pub(crate) fn node_min_dist_sq(&self, node: u32, c: [S; 3]) -> S {
        self.nodes[node as usize].min_dist_sq(c)
    }

    #[inline]
    pub(crate) fn node_children(&self, node: u32) -> Option<(u32, u32)> {
        match self.nodes[node as usize].kind {
            NodeKind::Internal { left, right, .. } => Some((left, right)),
            NodeKind::Leaf => None,
        }
    }

    #[inline]
    pub(crate) fn node_range(&self, node: u32) -> (u32, u32) {
        let n = &self.nodes[node as usize];
        (n.start, n.end)
    }

    #[inline]
    pub(crate) fn slot_coord(&self, slot: u32) -> [S; 3] {
        self.coords[slot as usize]
    }

    #[inline]
    pub(crate) fn convert_point(p: Vec3) -> [S; 3] {
        Self::to_s(p)
    }
}

/// Visit each of the 27 periodic images of the box `[lo, hi]` whose
/// inflation by `radius` can reach `[0, box_len]³`, passing the shifted
/// corners (for a point query, pass `lo == hi`). The image enumeration
/// and the can-reach skip test live only here, shared by the per-point
/// and box-query periodic walks so both traversal modes always cover
/// identical images.
fn for_each_reachable_image<F: FnMut(Vec3, Vec3)>(
    lo: Vec3,
    hi: Vec3,
    radius: f64,
    box_len: f64,
    f: &mut F,
) {
    for ix in -1i32..=1 {
        for iy in -1i32..=1 {
            for iz in -1i32..=1 {
                let shift = Vec3::new(
                    ix as f64 * box_len,
                    iy as f64 * box_len,
                    iz as f64 * box_len,
                );
                let slo = lo + shift;
                let shi = hi + shift;
                // Skip images whose inflated box cannot reach [0, L]³.
                if shi.x + radius < 0.0
                    || slo.x - radius > box_len
                    || shi.y + radius < 0.0
                    || slo.y - radius > box_len
                    || shi.z + radius < 0.0
                    || slo.z - radius > box_len
                {
                    continue;
                }
                f(slo, shi);
            }
        }
    }
}

/// Apply permutation `perm` (values are indices into the segment) to both
/// arrays simultaneously, using scratch buffers.
fn apply_permutation<S: Copy>(coords: &mut [[S; 3]], ids: &mut [u32], perm: &[u32]) {
    let tmp_coords: Vec<[S; 3]> = perm.iter().map(|&i| coords[i as usize]).collect();
    let tmp_ids: Vec<u32> = perm.iter().map(|&i| ids[i as usize]).collect();
    coords.copy_from_slice(&tmp_coords);
    ids.copy_from_slice(&tmp_ids);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForce;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn random_points(n: usize, box_len: f64, seed: u64) -> Vec<Vec3> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.random_range(0.0..box_len),
                    rng.random_range(0.0..box_len),
                    rng.random_range(0.0..box_len),
                )
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let tree = KdTree::<f64>::build(&[], TreeConfig::default());
        assert!(tree.is_empty());
        assert_eq!(tree.within(Vec3::ZERO, 10.0), Vec::<u32>::new());
        assert_eq!(tree.count_within(Vec3::ZERO, 10.0), 0);
    }

    #[test]
    fn single_point() {
        let tree = KdTree::<f64>::build(&[Vec3::splat(1.0)], TreeConfig::default());
        assert_eq!(tree.within(Vec3::ZERO, 2.0), vec![0]);
        assert_eq!(tree.within(Vec3::ZERO, 1.0), Vec::<u32>::new());
        // boundary is inclusive
        assert_eq!(tree.within(Vec3::ZERO, 3f64.sqrt() + 1e-12), vec![0]);
    }

    #[test]
    fn matches_brute_force_f64() {
        let pts = random_points(500, 100.0, 7);
        let tree = KdTree::<f64>::build(&pts, TreeConfig { leaf_size: 8 });
        let brute = BruteForce::new(&pts);
        for (i, &c) in pts.iter().enumerate().step_by(37) {
            for radius in [0.0, 5.0, 20.0, 60.0, 200.0] {
                let mut got = tree.within(c, radius);
                let mut want = brute.within(c, radius);
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "center {i} radius {radius}");
                assert_eq!(tree.count_within(c, radius), want.len());
            }
        }
    }

    #[test]
    fn f32_tree_close_to_f64() {
        // Mixed precision: results may differ only for pairs within a few
        // ULPs of the boundary. With a well-separated radius they agree.
        let pts = random_points(400, 50.0, 11);
        let t64 = KdTree::<f64>::build(&pts, TreeConfig::default());
        let t32 = KdTree::<f32>::build(&pts, TreeConfig::default());
        let mut diff_total = 0usize;
        for &c in pts.iter().step_by(17) {
            let a = t64.within(c, 12.0);
            let b = t32.within(c, 12.0);
            let sa: std::collections::BTreeSet<_> = a.iter().collect();
            let sb: std::collections::BTreeSet<_> = b.iter().collect();
            diff_total += sa.symmetric_difference(&sb).count();
        }
        assert!(
            diff_total <= 2,
            "f32 tree diverged: {diff_total} boundary flips"
        );
    }

    #[test]
    fn clustered_points_stay_balanced() {
        // A pathological distribution: two tight clusters far apart.
        let mut pts = random_points(256, 1.0, 3);
        pts.extend(
            random_points(256, 1.0, 4)
                .iter()
                .map(|p| *p + Vec3::splat(1000.0)),
        );
        let tree = KdTree::<f64>::build(&pts, TreeConfig { leaf_size: 4 });
        let stats = tree.stats();
        // Balanced median split: depth ≈ log2(512/4) + 1 = 8, allow slack.
        assert!(stats.max_depth <= 10, "depth {}", stats.max_depth);
        assert_eq!(stats.num_points, 512);
    }

    #[test]
    fn duplicate_points_handled() {
        let pts = vec![Vec3::splat(5.0); 100];
        let tree = KdTree::<f64>::build(&pts, TreeConfig { leaf_size: 8 });
        assert_eq!(tree.within(Vec3::splat(5.0), 0.1).len(), 100);
        assert_eq!(tree.count_within(Vec3::splat(5.0), 0.1), 100);
        assert!(
            tree.stats().max_depth < 30,
            "no infinite split on duplicates"
        );
    }

    #[test]
    fn periodic_query_finds_wrapped_neighbors() {
        let box_len = 100.0;
        let pts = vec![
            Vec3::new(1.0, 50.0, 50.0),
            Vec3::new(99.0, 50.0, 50.0),
            Vec3::new(50.0, 50.0, 50.0),
        ];
        let tree = KdTree::<f64>::build(&pts, TreeConfig::default());
        // Non-periodic: point 1 is 98 away from point 0.
        assert_eq!(tree.within(pts[0], 10.0).len(), 1); // itself
                                                        // Periodic: minimum-image distance is 2.
        let mut found = Vec::new();
        tree.for_each_within_periodic(pts[0], 10.0, box_len, &mut |id| found.push(id));
        found.sort_unstable();
        assert_eq!(found, vec![0, 1]);
    }

    #[test]
    fn periodic_matches_brute_minimum_image() {
        let box_len = 20.0;
        let pts = random_points(300, box_len, 23);
        let tree = KdTree::<f64>::build(&pts, TreeConfig { leaf_size: 8 });
        for &c in pts.iter().step_by(29) {
            let radius = 6.0;
            let mut got = Vec::new();
            tree.for_each_within_periodic(c, radius, box_len, &mut |id| got.push(id));
            got.sort_unstable();
            let mut want: Vec<u32> = (0..pts.len() as u32)
                .filter(|&i| pts[i as usize].periodic_delta(c, box_len).norm() <= radius)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn leaves_partition_slot_space() {
        let pts = random_points(777, 30.0, 13);
        let tree = KdTree::<f64>::build(&pts, TreeConfig { leaf_size: 16 });
        let leaves = tree.collect_leaves();
        assert_eq!(leaves.len(), tree.stats().num_leaves);
        // Ascending, contiguous, covering 0..len exactly once.
        let mut next = 0u32;
        let mut seen = vec![false; pts.len()];
        for leaf in &leaves {
            assert_eq!(leaf.start, next, "leaves must tile the slot space");
            assert!(leaf.len() >= 1 && leaf.len() <= 16);
            for slot in leaf.start..leaf.end {
                let id = tree.id_at(slot as usize) as usize;
                assert!(!seen[id], "point {id} in two leaves");
                seen[id] = true;
                // Every point sits inside its leaf bbox and radius.
                let p = pts[id];
                assert!(p.x >= leaf.lo.x && p.x <= leaf.hi.x);
                assert!(p.y >= leaf.lo.y && p.y <= leaf.hi.y);
                assert!(p.z >= leaf.lo.z && p.z <= leaf.hi.z);
                assert!(p.distance(leaf.center()) <= leaf.radius() + 1e-12);
            }
            next = leaf.end;
        }
        assert_eq!(next as usize, pts.len());
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn aabb_walk_covers_brute_force_union() {
        // Every point within `r` of ANY point in the query box must be
        // covered by some emitted range (superset semantics).
        let pts = random_points(600, 50.0, 17);
        let tree = KdTree::<f64>::build(&pts, TreeConfig { leaf_size: 8 });
        for (qlo, qhi, r) in [
            (
                Vec3::new(10.0, 10.0, 10.0),
                Vec3::new(14.0, 12.0, 16.0),
                6.0,
            ),
            (Vec3::new(0.0, 0.0, 0.0), Vec3::new(50.0, 50.0, 50.0), 1.0),
            (
                Vec3::new(48.0, 48.0, 48.0),
                Vec3::new(49.0, 49.0, 49.0),
                3.0,
            ),
            (
                Vec3::new(-20.0, -20.0, -20.0),
                Vec3::new(-10.0, -10.0, -10.0),
                4.0,
            ),
        ] {
            let mut covered = vec![false; pts.len()];
            let mut last_end = 0u32;
            tree.for_each_within_of_aabb(qlo, qhi, r, &mut |start, end| {
                assert!(start >= last_end, "ranges must be disjoint ascending");
                last_end = end;
                for slot in start..end {
                    covered[tree.id_at(slot as usize) as usize] = true;
                }
            });
            for (i, &p) in pts.iter().enumerate() {
                // Distance from p to the query box.
                let dx = (qlo.x - p.x).max(p.x - qhi.x).max(0.0);
                let dy = (qlo.y - p.y).max(p.y - qhi.y).max(0.0);
                let dz = (qlo.z - p.z).max(p.z - qhi.z).max(0.0);
                let d2 = dx * dx + dy * dy + dz * dz;
                if d2 <= r * r {
                    assert!(covered[i], "point {i} within {r} of box but not covered");
                }
                // Pruning sanity: points far outside reach are dropped
                // (allowing leaf-granularity over-coverage).
                if !covered[i] {
                    assert!(d2 > r * r, "covered set must be a superset only");
                }
            }
        }
    }

    #[test]
    fn aabb_walk_periodic_covers_minimum_image_union() {
        let box_len = 20.0;
        let pts = random_points(400, box_len, 19);
        let tree = KdTree::<f64>::build(&pts, TreeConfig { leaf_size: 8 });
        let qlo = Vec3::new(0.5, 17.0, 9.0);
        let qhi = Vec3::new(2.5, 19.5, 11.0);
        let r = 4.0;
        let mut covered = vec![false; pts.len()];
        tree.for_each_within_of_aabb_periodic(qlo, qhi, r, box_len, &mut |start, end| {
            for slot in start..end {
                covered[tree.id_at(slot as usize) as usize] = true;
            }
        });
        // Brute force: min over the 27 images of the query box.
        for (i, &p) in pts.iter().enumerate() {
            let mut best = f64::INFINITY;
            for ix in -1i32..=1 {
                for iy in -1i32..=1 {
                    for iz in -1i32..=1 {
                        let s = Vec3::new(
                            ix as f64 * box_len,
                            iy as f64 * box_len,
                            iz as f64 * box_len,
                        );
                        let dx = (qlo.x + s.x - p.x).max(p.x - (qhi.x + s.x)).max(0.0);
                        let dy = (qlo.y + s.y - p.y).max(p.y - (qhi.y + s.y)).max(0.0);
                        let dz = (qlo.z + s.z - p.z).max(p.z - (qhi.z + s.z)).max(0.0);
                        best = best.min(dx * dx + dy * dy + dz * dz);
                    }
                }
            }
            if best <= r * r {
                assert!(covered[i], "point {i} within periodic reach but missed");
            }
        }
    }

    #[test]
    fn aabb_walk_on_empty_tree_is_silent() {
        let tree = KdTree::<f64>::build(&[], TreeConfig::default());
        assert!(tree.collect_leaves().is_empty());
        tree.for_each_within_of_aabb(Vec3::ZERO, Vec3::splat(1.0), 5.0, &mut |_, _| {
            panic!("no ranges expected")
        });
    }

    #[test]
    fn stats_are_consistent() {
        let pts = random_points(1000, 10.0, 5);
        let tree = KdTree::<f64>::build(&pts, TreeConfig { leaf_size: 16 });
        let s = tree.stats();
        assert_eq!(s.num_points, 1000);
        assert!(s.num_leaves >= 1000 / 16);
        assert!(s.mean_leaf_size <= 16.0);
        assert!(s.num_nodes >= 2 * s.num_leaves - 1);
    }
}
