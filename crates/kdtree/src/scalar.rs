//! Precision abstraction for the k-d tree.
//!
//! The paper runs the tree search in single precision ("due to its
//! insensitivity to the precision of galaxy locations") while the
//! multipole kernel stays in double precision. Instantiating the tree
//! over [`Scalar`] gives both variants from one implementation, and the
//! mixed-vs-double benchmark (paper §5.4, 9% end-to-end gain) compares
//! `KdTree<f32>` against `KdTree<f64>`.

/// A floating-point coordinate type usable by the k-d tree.
pub trait Scalar: Copy + PartialOrd + Send + Sync + std::fmt::Debug + 'static {
    const ZERO: Self;
    const MAX: Self;

    fn from_f64(v: f64) -> Self;
    fn to_f64(self) -> f64;
    fn add(self, o: Self) -> Self;
    fn sub(self, o: Self) -> Self;
    fn mul(self, o: Self) -> Self;

    /// `max(self, o)` with NaN-free inputs assumed.
    #[inline]
    fn fmax(self, o: Self) -> Self {
        if self > o {
            self
        } else {
            o
        }
    }

    /// `min(self, o)` with NaN-free inputs assumed.
    #[inline]
    fn fmin(self, o: Self) -> Self {
        if self < o {
            self
        } else {
            o
        }
    }
}

impl Scalar for f32 {
    const ZERO: f32 = 0.0;
    const MAX: f32 = f32::MAX;

    #[inline]
    fn from_f64(v: f64) -> f32 {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn add(self, o: f32) -> f32 {
        self + o
    }
    #[inline]
    fn sub(self, o: f32) -> f32 {
        self - o
    }
    #[inline]
    fn mul(self, o: f32) -> f32 {
        self * o
    }
}

impl Scalar for f64 {
    const ZERO: f64 = 0.0;
    const MAX: f64 = f64::MAX;

    #[inline]
    fn from_f64(v: f64) -> f64 {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn add(self, o: f64) -> f64 {
        self + o
    }
    #[inline]
    fn sub(self, o: f64) -> f64 {
        self - o
    }
    #[inline]
    fn mul(self, o: f64) -> f64 {
        self * o
    }
}

/// Squared Euclidean distance between two points of scalar type `S`.
#[inline]
pub fn distance_sq<S: Scalar>(a: [S; 3], b: [S; 3]) -> S {
    let dx = a[0].sub(b[0]);
    let dy = a[1].sub(b[1]);
    let dz = a[2].sub(b[2]);
    dx.mul(dx).add(dy.mul(dy)).add(dz.mul(dz))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip() {
        assert_eq!(f32::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(f32::ZERO, 0.0f32);
        assert_eq!(2.0f32.fmax(3.0), 3.0);
        assert_eq!(2.0f32.fmin(3.0), 2.0);
    }

    #[test]
    fn distance_sq_matches_f64() {
        let a = [1.0f64, 2.0, 3.0];
        let b = [4.0f64, 6.0, 3.0];
        assert_eq!(distance_sq(a, b), 25.0);
        let a32 = [1.0f32, 2.0, 3.0];
        let b32 = [4.0f32, 6.0, 3.0];
        assert_eq!(distance_sq(a32, b32), 25.0f32);
    }
}
