//! Brute-force reference searcher.
//!
//! O(N) per query; the ground truth against which the tree is tested and
//! the baseline in the `neighbor_search` criterion bench (the crossover
//! between brute force and tree search is one of the design-choice
//! ablations listed in DESIGN.md).

use galactos_math::Vec3;

/// A flat list of points searched linearly.
#[derive(Clone, Debug)]
pub struct BruteForce {
    points: Vec<Vec3>,
}

impl BruteForce {
    pub fn new(points: &[Vec3]) -> Self {
        BruteForce {
            points: points.to_vec(),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Indices of all points within `radius` of `center` (inclusive).
    pub fn within(&self, center: Vec3, radius: f64) -> Vec<u32> {
        let r2 = radius * radius;
        self.points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance_sq(center) <= r2)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Count of points within `radius` of `center`.
    pub fn count_within(&self, center: Vec3, radius: f64) -> usize {
        let r2 = radius * radius;
        self.points
            .iter()
            .filter(|p| p.distance_sq(center) <= r2)
            .count()
    }

    /// The `k` nearest neighbors (index, squared distance), sorted by
    /// distance ascending; fewer if the set is smaller than `k`.
    pub fn nearest_k(&self, center: Vec3, k: usize) -> Vec<(u32, f64)> {
        let mut all: Vec<(u32, f64)> = self
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u32, p.distance_sq(center)))
            .collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_and_count_agree() {
        let pts = vec![
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 2.0, 0.0),
            Vec3::new(0.0, 0.0, 3.0),
        ];
        let b = BruteForce::new(&pts);
        assert_eq!(b.within(Vec3::ZERO, 2.5), vec![0, 1, 2]);
        assert_eq!(b.count_within(Vec3::ZERO, 2.5), 3);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn nearest_k_sorted() {
        let pts = vec![
            Vec3::new(5.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(3.0, 0.0, 0.0),
        ];
        let b = BruteForce::new(&pts);
        let nn = b.nearest_k(Vec3::ZERO, 2);
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0].0, 1);
        assert_eq!(nn[1].0, 2);
        assert!(b.nearest_k(Vec3::ZERO, 10).len() == 3);
    }
}
