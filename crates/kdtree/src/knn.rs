//! k-nearest-neighbor queries on the k-d tree.
//!
//! Not on the 3PCF hot path (the algorithm is fixed-radius), but required
//! by catalog diagnostics (mean inter-galaxy separation, the quantity the
//! paper compares against the bin width when explaining why plain k-d
//! tree 3PCF algorithms fail for sparse surveys — §2.1) and provided for
//! downstream users of the tree.

use crate::scalar::{distance_sq, Scalar};
use crate::tree::KdTree;
use galactos_math::Vec3;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Max-heap entry holding a candidate neighbor.
struct HeapItem {
    dist_sq: f64,
    id: u32,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist_sq == other.dist_sq && self.id == other.id
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist_sq
            .partial_cmp(&other.dist_sq)
            .unwrap_or(Ordering::Equal)
            .then(self.id.cmp(&other.id))
    }
}

impl<S: Scalar> KdTree<S> {
    /// The `k` nearest neighbors of `center` as `(original index,
    /// squared distance)`, sorted ascending by distance. Distances are
    /// evaluated in `S` precision and reported as `f64`.
    pub fn nearest_k(&self, center: Vec3, k: usize) -> Vec<(u32, f64)> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let c = Self::convert_point(center);
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(k + 1);
        self.knn_rec(0, c, k, &mut heap);
        let mut out: Vec<(u32, f64)> = heap.into_iter().map(|h| (h.id, h.dist_sq)).collect();
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        out
    }

    fn knn_rec(&self, node: u32, c: [S; 3], k: usize, heap: &mut BinaryHeap<HeapItem>) {
        let min_d = self.node_min_dist_sq(node, c).to_f64();
        if heap.len() == k && min_d > heap.peek().unwrap().dist_sq {
            return;
        }
        match self.node_children(node) {
            None => {
                let (start, end) = self.node_range(node);
                for slot in start..end {
                    let d = distance_sq(self.slot_coord(slot), c).to_f64();
                    if heap.len() < k {
                        heap.push(HeapItem {
                            dist_sq: d,
                            id: self.id_at(slot as usize),
                        });
                    } else if d < heap.peek().unwrap().dist_sq {
                        heap.pop();
                        heap.push(HeapItem {
                            dist_sq: d,
                            id: self.id_at(slot as usize),
                        });
                    }
                }
            }
            Some((left, right)) => {
                // Visit the nearer child first for earlier pruning.
                let dl = self.node_min_dist_sq(left, c).to_f64();
                let dr = self.node_min_dist_sq(right, c).to_f64();
                let (first, second) = if dl <= dr {
                    (left, right)
                } else {
                    (right, left)
                };
                self.knn_rec(first, c, k, heap);
                self.knn_rec(second, c, k, heap);
            }
        }
    }

    /// Distance to the nearest neighbor *excluding* the query point
    /// itself (identified by index). Returns `None` for trees with fewer
    /// than 2 points.
    pub fn nearest_neighbor_distance(&self, center: Vec3, self_id: u32) -> Option<f64> {
        let nn = self.nearest_k(center, 2);
        nn.into_iter()
            .find(|&(id, _)| id != self_id)
            .map(|(_, d2)| d2.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForce;
    use crate::tree::TreeConfig;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Vec3::new(
                    rng.random_range(0.0..50.0),
                    rng.random_range(0.0..50.0),
                    rng.random_range(0.0..50.0),
                )
            })
            .collect()
    }

    #[test]
    fn knn_matches_brute_force() {
        let pts = random_points(400, 99);
        let tree = KdTree::<f64>::build(&pts, TreeConfig { leaf_size: 8 });
        let brute = BruteForce::new(&pts);
        for &c in pts.iter().step_by(41) {
            for k in [1, 3, 10, 50] {
                let got = tree.nearest_k(c, k);
                let want = brute.nearest_k(c, k);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(want.iter()) {
                    // Ties may order differently; distances must agree.
                    assert!((g.1 - w.1).abs() < 1e-12, "k={k}");
                }
            }
        }
    }

    #[test]
    fn knn_k_larger_than_set() {
        let pts = random_points(5, 1);
        let tree = KdTree::<f64>::build(&pts, TreeConfig::default());
        assert_eq!(tree.nearest_k(Vec3::ZERO, 100).len(), 5);
        assert_eq!(tree.nearest_k(Vec3::ZERO, 0).len(), 0);
    }

    #[test]
    fn nearest_neighbor_distance_excludes_self() {
        let pts = vec![Vec3::ZERO, Vec3::new(3.0, 0.0, 0.0)];
        let tree = KdTree::<f64>::build(&pts, TreeConfig::default());
        let d = tree.nearest_neighbor_distance(pts[0], 0).unwrap();
        assert!((d - 3.0).abs() < 1e-12);
    }
}
