//! Deterministic plain-text span summary.
//!
//! Aggregates finished spans by their slash-joined path across all
//! tracks (so eight workers' `compute/worker/search` slices fold into
//! one row), then renders a sorted tree with total time, percent of the
//! top-level total, and call counts. Row order is the lexicographic
//! path order — stable across runs and thread pools — so the output is
//! diffable; only the time columns vary run to run.

use crate::span::Tracer;
use std::collections::BTreeMap;

#[derive(Debug, Default, Clone, Copy)]
struct Row {
    total_nanos: u64,
    calls: u64,
}

fn format_secs(nanos: u64) -> String {
    format!("{:.6}s", nanos as f64 / 1e9)
}

/// Render the summary; `title` becomes the header line.
pub fn render_summary(tracer: &Tracer, title: &str) -> String {
    let mut rows: BTreeMap<String, Row> = BTreeMap::new();
    for span in tracer.finished() {
        let row = rows.entry(span.path.clone()).or_default();
        row.total_nanos += span.duration_nanos();
        row.calls += span.calls;
    }
    // Percentages are relative to the summed top-level spans. Totals
    // across parallel tracks are CPU time, so children can legitimately
    // exceed 100% of one track's wall time; the root sum is the stable
    // reference.
    let root_total: u64 = rows
        .iter()
        .filter(|(path, _)| !path.contains('/'))
        .map(|(_, row)| row.total_nanos)
        .sum();

    let name_width = rows
        .keys()
        .map(|path| {
            let depth = path.matches('/').count();
            let leaf = path.rsplit('/').next().unwrap_or(path);
            2 * depth + leaf.chars().count()
        })
        .max()
        .unwrap_or(4)
        .max("span".len());

    let mut out = String::new();
    out.push_str(&format!(
        "{title} — {} span paths, {} tracks\n",
        rows.len(),
        tracer.tracks().len()
    ));
    out.push_str(&format!(
        "{:<name_width$}  {:>14}  {:>7}  {:>10}\n",
        "span", "total", "%", "calls"
    ));
    for (path, row) in &rows {
        let depth = path.matches('/').count();
        let leaf = path.rsplit('/').next().unwrap_or(path);
        let pct = if root_total > 0 {
            100.0 * row.total_nanos as f64 / root_total as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<name_width$}  {:>14}  {:>6.1}%  {:>10}\n",
            format!("{}{}", "  ".repeat(depth), leaf),
            format_secs(row.total_nanos),
            pct,
            row.calls
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_folds_tracks_and_sorts_paths() {
        let tracer = Tracer::new();
        {
            let _g = tracer.span("compute");
            tracer.add_aggregate("kernel", 7, 3_000);
            tracer.add_aggregate("bin", 7, 1_000);
        }
        std::thread::scope(|s| {
            s.spawn(|| {
                let _g = tracer.span("compute");
                tracer.add_aggregate("kernel", 5, 2_000);
            });
        });
        let text = render_summary(&tracer, "TEST");
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("TEST — 3 span paths, 2 tracks"));
        // Path-sorted: compute, compute/bin, compute/kernel.
        assert!(lines[2].trim_start().starts_with("compute"));
        assert!(lines[3].trim_start().starts_with("bin"));
        assert!(lines[4].trim_start().starts_with("kernel"));
        // kernel folded across both tracks: 12 calls, 5 µs.
        assert!(lines[4].contains("12"));
        assert!(lines[4].contains("0.000005s"));
        // Deterministic given identical span sets.
        let again = render_summary(&tracer, "TEST");
        assert_eq!(text, again);
    }

    #[test]
    fn empty_tracer_renders_header_only() {
        let tracer = Tracer::disabled();
        let text = render_summary(&tracer, "EMPTY");
        assert!(text.starts_with("EMPTY — 0 span paths, 0 tracks"));
    }
}
