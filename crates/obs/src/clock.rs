//! The one sanctioned wall-clock gate for the runtime crates.
//!
//! galactos-lint's W-CLOCK rule forbids `Instant::now` outside
//! `crates/bench`, `core::timing`, tests/examples — and this module,
//! which is on the allowlist **by registration, not suppression**. Every
//! runtime crate (engine, grid, supervised pipeline, ensemble) times
//! itself through [`now_if`]/[`nanos_since`], so the zero-cost contract
//! is auditable in one place: when `instrument` is false, no branch in
//! this module touches the clock.
//!
//! Each real clock read also bumps a process-global counter, exposed via
//! [`reads`]. Tests pin the contract by asserting the counter does not
//! move across an uninstrumented run — a much stronger check than
//! "timings came back zero". The counter is one relaxed atomic add per
//! read; uninstrumented runs never reach it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static CLOCK_READS: AtomicU64 = AtomicU64::new(0);

/// Process-global number of real clock reads made through this module.
pub fn reads() -> u64 {
    CLOCK_READS.load(Ordering::Relaxed)
}

fn read_now() -> Instant {
    CLOCK_READS.fetch_add(1, Ordering::Relaxed);
    Instant::now()
}

/// Read the clock only when instrumentation is on.
#[inline]
pub fn now_if(instrument: bool) -> Option<Instant> {
    if instrument {
        Some(read_now())
    } else {
        None
    }
}

/// Elapsed nanoseconds since `start`, or 0 without touching the clock
/// when `start` is `None`.
#[inline]
pub fn nanos_since(start: Option<Instant>) -> u64 {
    match start {
        Some(t0) => {
            CLOCK_READS.fetch_add(1, Ordering::Relaxed);
            t0.elapsed().as_nanos() as u64
        }
        None => 0,
    }
}

/// A fixed time origin for trace timestamps: span offsets are measured
/// from the epoch so every track shares one timeline.
#[derive(Clone, Copy, Debug)]
pub struct Epoch(Instant);

impl Epoch {
    /// Capture the current instant as the origin (one clock read).
    pub fn now() -> Self {
        Epoch(read_now())
    }

    /// Nanoseconds from the epoch to `t` (saturating at 0 for instants
    /// before the epoch; no clock read).
    pub fn nanos_to(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.0).as_nanos() as u64
    }

    /// Nanoseconds elapsed since the epoch (one clock read).
    pub fn elapsed_nanos(&self) -> u64 {
        nanos_since(Some(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uninstrumented_calls_never_read() {
        let before = reads();
        assert!(now_if(false).is_none());
        assert_eq!(nanos_since(None), 0);
        assert_eq!(reads(), before);
    }

    #[test]
    fn instrumented_calls_count_reads() {
        let before = reads();
        let t0 = now_if(true);
        assert!(t0.is_some());
        let _ = nanos_since(t0);
        assert!(reads() >= before + 2);
    }

    #[test]
    fn epoch_orders_instants() {
        let e = Epoch::now();
        let later = now_if(true).unwrap();
        assert!(e.nanos_to(later) <= e.elapsed_nanos() + 1_000_000_000);
    }
}
