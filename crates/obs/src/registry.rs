//! Named metrics: counters, gauges, fixed-bucket histograms.
//!
//! All updates are relaxed atomic integer operations, so concurrent
//! increments commute exactly and every snapshot total is bit-stable
//! across thread pools — the property the registry inherits from the
//! engine's integer pair counters and that the service-mode roadmap
//! item (qps/latency metrics) needs.
//!
//! A disabled registry hands out one shared sink per metric kind, so
//! hot-path `counter("x").add(1)` calls cost a mutex-free branch and an
//! atomic add into a value nobody reads. Gate per-item work on
//! [`Registry::is_enabled`] when even that is too much.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing integer metric.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    pub fn add(&self, v: u64) {
        self.value.fetch_add(v, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins integer metric (e.g. resident set, queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    pub const fn new() -> Self {
        Gauge {
            value: AtomicU64::new(0),
        }
    }

    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket histogram: bucket `i` counts observations `<= bounds[i]`,
/// with one implicit overflow bucket. Bounds are set at registration and
/// never change, so concurrent observes are plain atomic adds.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    pub fn new(bounds: &[u64]) -> Self {
        let mut sorted = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: sorted,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// `(upper_bound, count)` pairs; the final entry is the overflow
    /// bucket with `u64::MAX` as its bound.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, b) in self.buckets.iter().enumerate() {
            let bound = self.bounds.get(i).copied().unwrap_or(u64::MAX);
            out.push((bound, b.load(Ordering::Relaxed)));
        }
        out
    }
}

/// A snapshot value, for exports and assertions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(u64),
    /// `(count, sum, buckets)` with buckets as `(upper_bound, count)`.
    Histogram(u64, u64, Vec<(u64, u64)>),
}

#[derive(Debug, Default)]
struct Metrics {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// Get-or-create registry of named metrics.
///
/// Registration takes a mutex; updates through the returned `Arc`s are
/// lock-free. Callers on hot paths should register once and hold the
/// `Arc`.
#[derive(Debug)]
pub struct Registry {
    enabled: bool,
    metrics: Mutex<Metrics>,
    // Shared sinks handed out by a disabled registry so counter("x")
    // never allocates or locks.
    sink_counter: Arc<Counter>,
    sink_gauge: Arc<Gauge>,
    sink_histogram: Arc<Histogram>,
}

impl Registry {
    pub fn new() -> Self {
        Self::with_enabled(true)
    }

    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    fn with_enabled(enabled: bool) -> Self {
        Registry {
            enabled,
            metrics: Mutex::new(Metrics::default()),
            sink_counter: Arc::new(Counter::new()),
            sink_gauge: Arc::new(Gauge::new()),
            sink_histogram: Arc::new(Histogram::new(&[])),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Get or create a counter by name.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if !self.enabled {
            return Arc::clone(&self.sink_counter);
        }
        let mut m = self.metrics.lock().expect("obs registry poisoned");
        Arc::clone(
            m.counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Get or create a gauge by name.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if !self.enabled {
            return Arc::clone(&self.sink_gauge);
        }
        let mut m = self.metrics.lock().expect("obs registry poisoned");
        Arc::clone(
            m.gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Get or create a histogram by name; `bounds` apply only on first
    /// registration.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        if !self.enabled {
            return Arc::clone(&self.sink_histogram);
        }
        let mut m = self.metrics.lock().expect("obs registry poisoned");
        Arc::clone(
            m.histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Convenience: bump a counter by name.
    pub fn add(&self, name: &str, v: u64) {
        if self.enabled {
            self.counter(name).add(v);
        }
    }

    /// Counter value by name (0 when absent or disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        if !self.enabled {
            return 0;
        }
        let m = self.metrics.lock().expect("obs registry poisoned");
        m.counters.get(name).map_or(0, |c| c.get())
    }

    /// Deterministic snapshot: all metrics sorted by kind then name.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let m = self.metrics.lock().expect("obs registry poisoned");
        let mut out = Vec::new();
        for (name, c) in &m.counters {
            out.push((name.clone(), MetricValue::Counter(c.get())));
        }
        for (name, g) in &m.gauges {
            out.push((name.clone(), MetricValue::Gauge(g.get())));
        }
        for (name, h) in &m.histograms {
            out.push((
                name.clone(),
                MetricValue::Histogram(h.count(), h.sum(), h.buckets()),
            ));
        }
        out
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let r = Registry::new();
        r.counter("b.second").add(2);
        r.counter("a.first").add(1);
        r.counter("b.second").inc();
        r.gauge("depth").set(7);
        assert_eq!(r.counter_value("b.second"), 3);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.first", "b.second", "depth"]);
        assert_eq!(snap[2].1, MetricValue::Gauge(7));
    }

    #[test]
    fn histogram_buckets_partition_observations() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5122);
        let buckets = h.buckets();
        assert_eq!(buckets, vec![(10, 2), (100, 2), (1000, 0), (u64::MAX, 1)]);
    }

    #[test]
    fn concurrent_adds_commute_exactly() {
        let r = Registry::new();
        let c = r.counter("hits");
        thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn disabled_registry_swallows_everything() {
        let r = Registry::disabled();
        r.counter("x").add(5);
        r.add("y", 9);
        assert_eq!(r.counter_value("x"), 0);
        assert!(r.snapshot().is_empty());
    }
}
