//! Chrome Trace Event export.
//!
//! Emits the JSON Object Format of the Trace Event specification —
//! loadable in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`. Each obs track becomes one `tid` with a
//! `thread_name` metadata record, every finished span becomes a
//! complete (`"ph":"X"`) event with microsecond timestamps, and
//! aggregate slices carry `"aggregate":true` plus their call count in
//! `args`. The writer is hand-rolled so this crate stays
//! dependency-free; `galactos-bench` round-trips the output through its
//! JSON parser as a validity gate.

use crate::span::{SpanRecord, Tracer};

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with nanosecond precision kept as three decimals.
fn micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1_000, nanos % 1_000)
}

fn span_event(s: &SpanRecord, pid: u32, out: &mut String) {
    out.push_str(&format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"path\":\"{}\",\"calls\":{}",
        escape(&s.name),
        if s.aggregate { "aggregate" } else { "span" },
        micros(s.start_nanos),
        micros(s.duration_nanos()),
        pid,
        s.track,
        escape(&s.path),
        s.calls,
    ));
    if s.aggregate {
        out.push_str(",\"aggregate\":true");
    }
    out.push_str("}}");
}

/// Render a tracer's finished spans as Chrome Trace Event JSON.
///
/// `process_name` labels the single process (`pid` 0); track labels
/// become thread names.
pub fn chrome_trace_json(tracer: &Tracer, process_name: &str) -> String {
    let pid = 0u32;
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let push_sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
    };

    push_sep(&mut out, &mut first);
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
        pid,
        escape(process_name)
    ));
    for (tid, label) in tracer.tracks().iter().enumerate() {
        push_sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            pid,
            tid,
            escape(label)
        ));
    }
    for span in tracer.finished() {
        push_sep(&mut out, &mut first);
        span_event(&span, pid, &mut out);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_contains_metadata_and_spans() {
        let tracer = Tracer::new();
        tracer.name_track("main");
        {
            let _g = tracer.span("compute \"quoted\"");
            tracer.add_aggregate("kernel", 4, 2_500);
        }
        let json = chrome_trace_json(&tracer, "galactos");
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"main\""));
        assert!(json.contains("compute \\\"quoted\\\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"aggregate\":true"));
        // Aggregate duration: 2500 ns = 2.500 µs.
        assert!(json.contains("\"dur\":2.500"));
    }

    #[test]
    fn micros_keeps_nanosecond_precision() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(1_234), "1.234");
        assert_eq!(micros(1_000_007), "1000.007");
    }
}
