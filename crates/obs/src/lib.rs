//! # galactos-obs — unified metrics and tracing
//!
//! The paper's headline result is a throughput claim (5.06 PF/s
//! sustained on Cori), yet measuring a whole Galactos run used to mean
//! stitching together three ad-hoc mechanisms: `StageTimer` in
//! `galactos-core`, `GridTimings` in the grid estimator, and hand-rolled
//! per-bin JSON in `galactos-bench`. This crate is the single substrate
//! all of them now sit on:
//!
//! * [`Registry`] — named, atomics-backed [`Counter`]s, [`Gauge`]s and
//!   fixed-bucket [`Histogram`]s. Integer adds commute exactly, so every
//!   counter total is bit-stable across thread pools.
//! * [`Tracer`] — a span tracer with thread-local span stacks
//!   (parent/child nesting), one track per worker thread or per rank,
//!   and aggregate slices for hot-path stage totals.
//! * [`chrome::chrome_trace_json`] — Chrome Trace Event JSON, loadable
//!   in Perfetto or `chrome://tracing`.
//! * [`summary::render_summary`] — a deterministic plain-text span tree
//!   (sorted, with totals/percent/call counts) suitable for diffing.
//!
//! ## The zero-cost contract
//!
//! Observability follows the same contract as the engine's
//! `ComputeScratch.instrument` gate: **a disabled session performs zero
//! clock reads and leaves results bit-identical**. Every clock read in
//! the workspace funnels through [`clock`] — the one module sanctioned
//! by galactos-lint's W-CLOCK rule outside `crates/bench` and
//! `core::timing` — and each real read bumps a global counter that
//! tests use to pin "uninstrumented ⇒ zero reads".
//!
//! ```
//! use galactos_obs::ObsSession;
//!
//! let obs = ObsSession::enabled();
//! {
//!     let _outer = obs.tracer.span("compute");
//!     let _inner = obs.tracer.span("tree_build");
//!     obs.registry.counter("engine.primaries").add(128);
//! }
//! let spans = obs.tracer.finished();
//! assert_eq!(spans.len(), 2);
//! assert_eq!(spans[0].path, "compute");
//! assert_eq!(spans[1].path, "compute/tree_build");
//! ```

#![forbid(unsafe_code)]

pub mod chrome;
pub mod clock;
pub mod registry;
pub mod span;
pub mod summary;

pub use registry::{Counter, Gauge, Histogram, MetricValue, Registry};
pub use span::{SpanGuard, SpanRecord, Tracer};

/// A tracer plus a registry, handed through the runtime layers as one
/// unit. `ObsSession::disabled()` is free to construct and makes every
/// span/metric call a no-op with zero clock reads.
#[derive(Debug)]
pub struct ObsSession {
    pub tracer: Tracer,
    pub registry: Registry,
}

impl ObsSession {
    /// A live session: spans are timed, metrics recorded.
    pub fn enabled() -> Self {
        Self {
            tracer: Tracer::new(),
            registry: Registry::new(),
        }
    }

    /// An inert session: no clock reads, no allocations per call.
    pub fn disabled() -> Self {
        Self {
            tracer: Tracer::disabled(),
            registry: Registry::disabled(),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_session_reads_no_clock() {
        let obs = ObsSession::disabled();
        let before = clock::reads();
        {
            let _a = obs.tracer.span("a");
            let _b = obs.tracer.span("b");
            obs.tracer.add_aggregate("agg", 3, 1234);
            obs.registry.counter("c").add(1);
        }
        assert_eq!(clock::reads(), before);
        assert!(obs.tracer.finished().is_empty());
    }

    #[test]
    fn enabled_session_records_nested_spans() {
        let obs = ObsSession::enabled();
        {
            let _a = obs.tracer.span("outer");
            {
                let _b = obs.tracer.span("inner");
            }
            let _c = obs.tracer.span("sibling");
        }
        let spans = obs.tracer.finished();
        let paths: Vec<&str> = spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["outer", "outer/inner", "outer/sibling"]);
        for s in &spans {
            assert!(s.end_nanos >= s.start_nanos);
        }
    }
}
