//! Span-based tracing with thread-local span stacks.
//!
//! A [`Tracer`] owns an epoch (the trace time origin) and a list of
//! finished spans. Each thread that touches the tracer gets its own
//! **track** (a timeline lane in the Chrome export) and its own span
//! stack, so parent/child nesting never needs cross-thread
//! coordination: entering a span pushes a frame on the current thread's
//! stack, dropping the [`SpanGuard`] pops it and records the finished
//! span under the path of its ancestors (`"compute/worker/search"`).
//!
//! Two recording flavors:
//!
//! * [`Tracer::span`] — a real timed span: one clock read at enter, one
//!   at exit.
//! * [`Tracer::add_aggregate`] — a pre-measured total (e.g. the engine's
//!   per-chunk `t_search` nanos) attached under the currently open span
//!   with **zero** clock reads; aggregates are laid out back-to-back
//!   from the parent's start so the Chrome view shows the stage
//!   breakdown inside the worker slice.
//!
//! A disabled tracer never reads the clock, never locks, and never
//! allocates per span — the zero-cost contract the engine's
//! bit-identity tests pin.

use crate::clock::Epoch;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One finished span (or aggregate slice).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Slash-joined ancestor names ending in this span's name.
    pub path: String,
    /// Leaf name.
    pub name: String,
    /// Track (timeline lane) index; see [`Tracer::tracks`].
    pub track: u32,
    /// Nesting depth (0 = track root).
    pub depth: u32,
    /// Offset from the tracer epoch, nanoseconds.
    pub start_nanos: u64,
    pub end_nanos: u64,
    /// Number of underlying calls (1 for real spans, N for aggregates).
    pub calls: u64,
    /// True for pre-measured totals recorded via `add_aggregate`.
    pub aggregate: bool,
}

impl SpanRecord {
    pub fn duration_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }
}

#[derive(Debug, Default)]
struct TraceState {
    /// Track labels; index is the track id. Threads register in first-
    /// touch order; [`Tracer::name_track`] renames the caller's track.
    tracks: Vec<String>,
    spans: Vec<SpanRecord>,
}

/// Span recorder; see the module docs.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    /// Distinguishes tracers so a thread-local context bound to an old
    /// tracer is re-initialized instead of mixing span stacks.
    id: u64,
    epoch: Option<Epoch>,
    state: Mutex<TraceState>,
}

static TRACER_IDS: AtomicU64 = AtomicU64::new(1);

struct Frame {
    name: String,
    start_nanos: u64,
    /// Nanos of aggregate slices already laid out under this span.
    agg_cursor: u64,
}

struct ThreadCtx {
    tracer_id: u64,
    track: u32,
    frames: Vec<Frame>,
    /// Aggregate layout cursor for slices recorded with no open span.
    root_cursor: u64,
}

thread_local! {
    static CTX: RefCell<ThreadCtx> = const {
        RefCell::new(ThreadCtx {
            tracer_id: 0,
            track: 0,
            frames: Vec::new(),
            root_cursor: 0,
        })
    };
}

impl Tracer {
    /// A live tracer; captures the epoch (one clock read).
    pub fn new() -> Self {
        Tracer {
            enabled: true,
            id: TRACER_IDS.fetch_add(1, Ordering::Relaxed),
            epoch: Some(Epoch::now()),
            state: Mutex::new(TraceState::default()),
        }
    }

    /// An inert tracer: every call is a no-op with zero clock reads.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            id: 0,
            epoch: None,
            state: Mutex::new(TraceState::default()),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Bind the calling thread to this tracer, registering a fresh track
    /// on first touch. Returns the track id.
    fn bind_thread(&self) -> u32 {
        CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            if ctx.tracer_id != self.id {
                let mut state = self.state.lock().expect("obs tracer poisoned");
                let track = state.tracks.len() as u32;
                state.tracks.push(format!("thread-{track}"));
                ctx.tracer_id = self.id;
                ctx.track = track;
                ctx.frames.clear();
                ctx.root_cursor = 0;
            }
            ctx.track
        })
    }

    /// Rename the calling thread's track (e.g. `"rank 3"`). Threads are
    /// otherwise labeled `thread-N` in first-touch order.
    pub fn name_track(&self, label: &str) {
        if !self.enabled {
            return;
        }
        let track = self.bind_thread();
        let mut state = self.state.lock().expect("obs tracer poisoned");
        state.tracks[track as usize] = label.to_string();
    }

    /// Enter a span; the returned guard records it when dropped. Guards
    /// must be dropped in LIFO order (the natural scoping order).
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        if !self.enabled {
            return SpanGuard { tracer: None };
        }
        let start = self
            .epoch
            .expect("enabled tracer has epoch")
            .elapsed_nanos();
        self.bind_thread();
        CTX.with(|ctx| {
            ctx.borrow_mut().frames.push(Frame {
                name: name.to_string(),
                start_nanos: start,
                agg_cursor: 0,
            });
        });
        SpanGuard { tracer: Some(self) }
    }

    /// Record a pre-measured total of `calls` invocations summing to
    /// `total_nanos`, as a child of the currently open span on this
    /// thread. Makes zero clock reads: aggregate slices are laid out
    /// back-to-back from the parent's start offset.
    pub fn add_aggregate(&self, name: &str, calls: u64, total_nanos: u64) {
        if !self.enabled {
            return;
        }
        let track = self.bind_thread();
        let record = CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            let depth = ctx.frames.len() as u32;
            let (parent_path, start) = match ctx.frames.last_mut() {
                Some(frame) => {
                    let start = frame.start_nanos + frame.agg_cursor;
                    frame.agg_cursor += total_nanos;
                    (Self::path_of(&ctx.frames), start)
                }
                None => {
                    let start = ctx.root_cursor;
                    ctx.root_cursor += total_nanos;
                    (String::new(), start)
                }
            };
            let path = if parent_path.is_empty() {
                name.to_string()
            } else {
                format!("{parent_path}/{name}")
            };
            SpanRecord {
                path,
                name: name.to_string(),
                track,
                depth,
                start_nanos: start,
                end_nanos: start + total_nanos,
                calls,
                aggregate: true,
            }
        });
        self.state
            .lock()
            .expect("obs tracer poisoned")
            .spans
            .push(record);
    }

    fn path_of(frames: &[Frame]) -> String {
        let names: Vec<&str> = frames.iter().map(|f| f.name.as_str()).collect();
        names.join("/")
    }

    /// Track labels, index = track id.
    pub fn tracks(&self) -> Vec<String> {
        self.state
            .lock()
            .expect("obs tracer poisoned")
            .tracks
            .clone()
    }

    /// All finished spans, sorted by `(track, start, path)` so the
    /// output is deterministic given deterministic work.
    pub fn finished(&self) -> Vec<SpanRecord> {
        let mut spans = self
            .state
            .lock()
            .expect("obs tracer poisoned")
            .spans
            .clone();
        spans.sort_by(|a, b| {
            (a.track, a.start_nanos, &a.path).cmp(&(b.track, b.start_nanos, &b.path))
        });
        spans
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII guard returned by [`Tracer::span`].
#[must_use = "a span guard records its span when dropped"]
pub struct SpanGuard<'a> {
    tracer: Option<&'a Tracer>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(tracer) = self.tracer else {
            return;
        };
        let end = tracer
            .epoch
            .expect("enabled tracer has epoch")
            .elapsed_nanos();
        let record = CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            // A guard from an earlier tracer whose thread context was
            // rebound has nothing to pop; drop it silently.
            if ctx.tracer_id != tracer.id {
                return None;
            }
            let path = Self::full_path(&ctx.frames);
            let frame = ctx.frames.pop()?;
            Some(SpanRecord {
                path,
                name: frame.name,
                track: ctx.track,
                depth: ctx.frames.len() as u32,
                start_nanos: frame.start_nanos,
                end_nanos: end.max(frame.start_nanos),
                calls: 1,
                aggregate: false,
            })
        });
        if let Some(record) = record {
            tracer
                .state
                .lock()
                .expect("obs tracer poisoned")
                .spans
                .push(record);
        }
    }
}

impl SpanGuard<'_> {
    fn full_path(frames: &[Frame]) -> String {
        let names: Vec<&str> = frames.iter().map(|f| f.name.as_str()).collect();
        names.join("/")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn threads_get_their_own_tracks() {
        let tracer = Tracer::new();
        {
            let _root = tracer.span("main");
        }
        thread::scope(|s| {
            for i in 0..2 {
                let tracer = &tracer;
                s.spawn(move || {
                    let _w = tracer.span("worker");
                    tracer.add_aggregate("stage", 10 + i, 500);
                });
            }
        });
        let spans = tracer.finished();
        assert_eq!(spans.len(), 5);
        let tracks = tracer.tracks();
        assert_eq!(tracks.len(), 3);
        // Worker spans landed on distinct non-main tracks.
        let worker_tracks: Vec<u32> = spans
            .iter()
            .filter(|s| s.name == "worker")
            .map(|s| s.track)
            .collect();
        assert_eq!(worker_tracks.len(), 2);
        assert_ne!(worker_tracks[0], worker_tracks[1]);
        // Aggregates nest under their worker span.
        for s in spans.iter().filter(|s| s.aggregate) {
            assert_eq!(s.path, "worker/stage");
            assert_eq!(s.depth, 1);
            assert_eq!(s.duration_nanos(), 500);
        }
    }

    #[test]
    fn aggregates_lay_out_back_to_back() {
        let tracer = Tracer::new();
        {
            let _g = tracer.span("parent");
            tracer.add_aggregate("a", 1, 100);
            tracer.add_aggregate("b", 1, 250);
        }
        let spans = tracer.finished();
        let a = spans.iter().find(|s| s.name == "a").unwrap();
        let b = spans.iter().find(|s| s.name == "b").unwrap();
        let parent = spans.iter().find(|s| s.name == "parent").unwrap();
        assert_eq!(a.start_nanos, parent.start_nanos);
        assert_eq!(b.start_nanos, a.end_nanos);
        assert_eq!(b.duration_nanos(), 250);
    }

    #[test]
    fn name_track_labels_current_thread() {
        let tracer = Tracer::new();
        tracer.name_track("rank 0");
        {
            let _g = tracer.span("shard");
        }
        assert_eq!(tracer.tracks(), vec!["rank 0".to_string()]);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        {
            let _g = tracer.span("x");
            tracer.add_aggregate("y", 1, 10);
        }
        assert!(tracer.finished().is_empty());
        assert!(tracer.tracks().is_empty());
    }
}
