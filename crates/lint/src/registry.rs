//! The committed unsafe registry: `UNSAFE_REGISTRY.txt` at the
//! workspace root.
//!
//! Every `unsafe` site W-UNSAFE discovers must match a line of the
//! registry, and every registry line must match a live site — so any
//! PR that adds, moves, or removes `unsafe` has to touch the registry
//! too, making the change a deliberate, reviewable diff rather than
//! something that slips in.
//!
//! # Format
//!
//! One site per line, `#` comments and blank lines ignored:
//!
//! ```text
//! <workspace-relative path> | <fn|block|impl|trait> | <context>
//! ```
//!
//! `context` is the enclosing function name (for blocks), the
//! function's own name (for `unsafe fn`), or the implementing type
//! (for `unsafe impl`). Line numbers are deliberately *not* recorded:
//! the registry should survive unrelated edits shuffling lines, while
//! still pinning the multiset of sites. Regenerate candidate lines
//! with `galactos-lint --print-unsafe`.

use crate::rules::{Finding, UnsafeSite};

/// Registry filename, relative to the workspace root.
pub const REGISTRY_FILE: &str = "UNSAFE_REGISTRY.txt";

/// One registry entry / one discovered site, in registry terms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    pub file: String,
    pub kind: String,
    pub context: String,
}

impl Entry {
    /// The canonical registry line for this entry.
    pub fn to_line(&self) -> String {
        format!("{} | {} | {}", self.file, self.kind, self.context)
    }
}

/// Parse registry text into `(line_number, entry)` pairs, appending a
/// finding for each malformed line.
fn parse(text: &str, findings: &mut Vec<Finding>) -> Vec<(usize, Entry)> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = trimmed.split('|').map(str::trim).collect();
        if parts.len() != 3 || parts.iter().any(|p| p.is_empty()) {
            findings.push(Finding {
                rule: "W-UNSAFE".to_string(),
                file: REGISTRY_FILE.to_string(),
                line: lineno,
                message: format!(
                    "malformed registry line (want `path | kind | context`): `{trimmed}`"
                ),
            });
            continue;
        }
        out.push((
            lineno,
            Entry {
                file: parts[0].to_string(),
                kind: parts[1].to_string(),
                context: parts[2].to_string(),
            },
        ));
    }
    out
}

/// Reconcile discovered sites against the registry (multiset match):
/// every extra site and every leftover registry line is a finding.
pub fn reconcile(sites: &[UnsafeSite], registry_text: Option<&str>, findings: &mut Vec<Finding>) {
    let mut entries = match registry_text {
        Some(text) => parse(text, findings),
        None => {
            for site in sites {
                findings.push(Finding {
                    rule: "W-UNSAFE".to_string(),
                    file: site.entry.file.clone(),
                    line: site.line,
                    message: format!(
                        "unsafe site found but `{REGISTRY_FILE}` is missing; \
                         create it with: `{}`",
                        site.entry.to_line()
                    ),
                });
            }
            return;
        }
    };
    let mut used = vec![false; entries.len()];
    for site in sites {
        let hit = entries
            .iter()
            .enumerate()
            .position(|(i, (_, e))| !used[i] && *e == site.entry);
        match hit {
            Some(i) => used[i] = true,
            None => findings.push(Finding {
                rule: "W-UNSAFE".to_string(),
                file: site.entry.file.clone(),
                line: site.line,
                message: format!(
                    "unsafe site not in {REGISTRY_FILE}; if intended, add: \
                     `{}`",
                    site.entry.to_line()
                ),
            }),
        }
    }
    for (i, (lineno, entry)) in entries.drain(..).enumerate() {
        if !used[i] {
            findings.push(Finding {
                rule: "W-UNSAFE".to_string(),
                file: REGISTRY_FILE.to_string(),
                line: lineno,
                message: format!(
                    "stale registry entry (no matching unsafe site in the \
                     tree): `{}`",
                    entry.to_line()
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(file: &str, kind: &str, context: &str, line: usize) -> UnsafeSite {
        UnsafeSite {
            line,
            entry: Entry {
                file: file.to_string(),
                kind: kind.to_string(),
                context: context.to_string(),
            },
        }
    }

    #[test]
    fn exact_match_is_clean() {
        let sites = [site("a.rs", "block", "f", 3), site("a.rs", "fn", "g", 9)];
        let mut findings = Vec::new();
        reconcile(
            &sites,
            Some("# comment\na.rs | block | f\na.rs | fn | g\n"),
            &mut findings,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn duplicate_sites_need_duplicate_entries() {
        let sites = [site("a.rs", "block", "f", 3), site("a.rs", "block", "f", 7)];
        let mut findings = Vec::new();
        reconcile(&sites, Some("a.rs | block | f\n"), &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("not in"));
        assert_eq!(findings[0].line, 7);

        let mut findings = Vec::new();
        reconcile(
            &sites,
            Some("a.rs | block | f\na.rs | block | f\n"),
            &mut findings,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn stale_and_missing_both_fire() {
        let sites = [site("a.rs", "block", "f", 3)];
        let mut findings = Vec::new();
        reconcile(&sites, Some("b.rs | fn | gone\n"), &mut findings);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().any(|f| f.message.contains("not in")));
        assert!(findings.iter().any(|f| f.message.contains("stale")));
    }

    #[test]
    fn missing_registry_with_sites_fires() {
        let sites = [site("a.rs", "block", "f", 3)];
        let mut findings = Vec::new();
        reconcile(&sites, None, &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("missing"));
    }

    #[test]
    fn malformed_line_fires() {
        let mut findings = Vec::new();
        reconcile(&[], Some("a.rs | block\n"), &mut findings);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("malformed"));
        assert_eq!(findings[0].line, 1);
    }
}
