//! `galactos-lint` — the workspace invariant checker.
//!
//! The repo's correctness contracts (thread-count bit-stability,
//! zero-cost uninstrumented hot paths, single-point env-knob
//! resolution, checked header parsing, audited `unsafe`) are enforced
//! here as build-breaking static analysis, not just rustdoc prose and
//! runtime tests. The tool is offline and dependency-free by design:
//! a small hand-rolled lexer (no `syn`, no crates.io) feeds a rule
//! engine; any finding makes the binary exit nonzero, and CI runs it
//! on every push.
//!
//! # Rules
//!
//! | rule | contract |
//! |------|----------|
//! | `W-UNSAFE` | every `unsafe` fn/block/impl carries a `SAFETY` justification **and** matches the committed [`registry::REGISTRY_FILE`] |
//! | `W-CLOCK` | `Instant::now` only in `crates/bench`, `obs::clock`, `core::timing`, tests/examples, or instrument-gated code |
//! | `W-ENV` | `GALACTOS_*` knob reads only in the three designated resolution modules |
//! | `W-DETERMINISM` | parallel float reductions go through the ordered two-arg `fold`/`reduce` helpers |
//! | `W-CAST` | no bare `as` narrowing in `catalog::io` / `shard.rs` header parsing |
//!
//! See [`rules`] for the precise scoping of each rule and the
//! suppression syntax, and [`registry`] for the unsafe-registry
//! format and workflow.
//!
//! # Scan policy
//!
//! All `.rs` files under the workspace root are scanned **except**
//! anything under `vendor/` (third-party stand-ins are not ours to
//! audit), `target/`, `fixtures/` (the lint's own test corpus
//! contains deliberate violations), and `.git/`. Test, example, and
//! bench *directories* are scanned but exempt from the runtime-path
//! rules (`W-CLOCK`, `W-ENV`) — measurement code may read clocks and
//! set knobs.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod registry;
pub mod report;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use rules::{lint_files, Finding, LintOutcome, SourceFile};

/// Directory names excluded from the scan, at any depth.
pub const EXCLUDED_DIRS: [&str; 4] = ["vendor", "target", "fixtures", ".git"];

/// Collect every scannable `.rs` file under `root`, as
/// workspace-relative forward-slash paths, sorted for determinism.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for rel in paths {
        let src = fs::read_to_string(root.join(&rel))?;
        files.push(SourceFile { path: rel, src });
    }
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if EXCLUDED_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walked path is under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Run the full lint over the workspace at `root`: collect sources,
/// read the registry if present, run every rule.
pub fn lint_root(root: &Path) -> io::Result<LintOutcome> {
    let files = collect_sources(root)?;
    let registry_text = match fs::read_to_string(root.join(registry::REGISTRY_FILE)) {
        Ok(text) => Some(text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => None,
        Err(e) => return Err(e),
    };
    Ok(lint_files(&files, registry_text.as_deref()))
}

/// Walk upward from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]` — the default `--root`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_is_discoverable_from_crate_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above crates/lint");
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn collect_excludes_vendor_and_fixtures() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).unwrap();
        let files = collect_sources(&root).unwrap();
        assert!(!files.is_empty());
        for f in &files {
            for excluded in EXCLUDED_DIRS {
                assert!(
                    !f.path.split('/').any(|c| c == excluded),
                    "{} should be excluded",
                    f.path
                );
            }
        }
        assert!(files.iter().any(|f| f.path == "crates/lint/src/lib.rs"));
    }

    /// The whole point: the current tree is clean under its own lint.
    #[test]
    fn workspace_is_clean() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).unwrap();
        let outcome = lint_root(&root).unwrap();
        let rendered: Vec<String> = outcome
            .findings
            .iter()
            .map(|f| format!("{} {}:{} {}", f.rule, f.file, f.line, f.message))
            .collect();
        assert!(
            outcome.is_clean(),
            "workspace has lint findings:\n{}",
            rendered.join("\n")
        );
    }
}
