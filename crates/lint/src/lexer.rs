//! A small Rust lexer, just deep enough that rules never fire inside
//! text.
//!
//! The token stream the rules consume contains identifiers,
//! punctuation, literals and lifetimes — with line/block comments
//! (nested), regular/raw/byte/C strings and char literals all
//! recognized and set aside. Comments are kept in a parallel list
//! (rules need them: `// SAFETY:` audits and `// lint:allow(...)`
//! suppressions live there); string *contents* are kept on their
//! tokens (the W-ENV rule looks for `"GALACTOS_*"` knob names), but a
//! string token can never be mistaken for code.
//!
//! This is a scanner, not a parser: no macro expansion, no cfg
//! evaluation. That is the documented altitude of the whole tool — the
//! same hand-rolled spirit as the bench crate's JSON writer.

/// One lexical token.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    /// Identifier/number text, string *contents* (delimiters and
    /// prefixes stripped), or the punctuation character.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    Ident,
    /// Single punctuation character (multi-char operators arrive as
    /// consecutive tokens; rules match sequences).
    Punct,
    /// String literal of any flavor: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// Numeric literal; `float` distinguishes `1.0` / `2e5` / `3f64`
    /// from integers (the W-DETERMINISM evidence check).
    Num {
        float: bool,
    },
    /// `'lifetime` (including `'_`).
    Lifetime,
}

/// One comment, line or block, with its source line span.
#[derive(Clone, Debug, PartialEq)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
    pub first_line: usize,
    pub last_line: usize,
}

/// A lexed source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl LexedFile {
    /// Comments whose span covers `line`, in source order.
    pub fn comments_on_line(&self, line: usize) -> impl Iterator<Item = &Comment> {
        self.comments
            .iter()
            .filter(move |c| c.first_line <= line && line <= c.last_line)
    }

    /// Does any *code* token (not a comment) sit on `line`?
    pub fn line_has_code(&self, line: usize) -> bool {
        self.tokens.iter().any(|t| t.line == line)
    }

    /// Is `line` an attribute line (`#[…]` / `#![…]` starts there)?
    /// Used when walking upward past attributes toward a comment block.
    pub fn line_starts_attribute(&self, line: usize) -> bool {
        self.tokens
            .iter()
            .find(|t| t.line == line)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == "#")
    }
}

struct Scanner {
    chars: Vec<char>,
    i: usize,
    line: usize,
    out: LexedFile,
}

impl Scanner {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Advance one char, tracking newlines.
    fn bump(&mut self) {
        if self.peek(0) == Some('\n') {
            self.line += 1;
        }
        self.i += 1;
    }

    fn push(&mut self, kind: TokenKind, text: String, line: usize) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn line_comment(&mut self) {
        let start = self.i;
        let line = self.line;
        while self.peek(0).is_some_and(|c| c != '\n') {
            self.i += 1;
        }
        self.out.comments.push(Comment {
            text: self.chars[start..self.i].iter().collect(),
            first_line: line,
            last_line: line,
        });
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let first_line = self.line;
        let mut depth = 0usize;
        while self.i < self.chars.len() {
            if self.peek(0) == Some('/') && self.peek(1) == Some('*') {
                depth += 1;
                self.i += 2;
            } else if self.peek(0) == Some('*') && self.peek(1) == Some('/') {
                depth -= 1;
                self.i += 2;
                if depth == 0 {
                    break;
                }
            } else {
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            text: self.chars[start..self.i].iter().collect(),
            first_line,
            last_line: self.line,
        });
    }

    /// Consume a string body starting *after* the opening quote.
    /// `hashes` > 0 or `raw` selects raw-string termination; otherwise
    /// backslash escapes are honored. Pushes the Str token.
    fn string_body(&mut self, raw: bool, hashes: usize, start_line: usize) {
        let content_start = self.i;
        let mut content_end = self.chars.len();
        while self.i < self.chars.len() {
            if !raw && self.peek(0) == Some('\\') {
                self.i += 2;
                continue;
            }
            if self.peek(0) == Some('"') {
                if raw {
                    let follows = self.chars[self.i + 1..]
                        .iter()
                        .take_while(|&&h| h == '#')
                        .count();
                    if follows >= hashes {
                        content_end = self.i;
                        self.i += 1 + hashes;
                        break;
                    }
                } else {
                    content_end = self.i;
                    self.i += 1;
                    break;
                }
            }
            self.bump();
        }
        self.push(
            TokenKind::Str,
            self.chars[content_start..content_end.min(self.chars.len())]
                .iter()
                .collect(),
            start_line,
        );
    }

    /// Consume a char/byte-char body starting *after* the opening `'`.
    fn char_body(&mut self, start_line: usize) {
        let content_start = self.i;
        while self.i < self.chars.len() {
            if self.peek(0) == Some('\\') {
                self.i += 2;
                continue;
            }
            if self.peek(0) == Some('\'') {
                break;
            }
            self.i += 1;
        }
        let content_end = self.i.min(self.chars.len());
        self.push(
            TokenKind::Char,
            self.chars[content_start..content_end].iter().collect(),
            start_line,
        );
        self.i += 1; // closing quote
    }

    /// Try to lex a prefixed string (`r"`, `r#"`, `b"`, `br#"`, `c"`,
    /// `cr"`) or byte-char (`b'`) at the current position. Returns true
    /// if consumed.
    fn try_prefixed_literal(&mut self) -> bool {
        let c = match self.peek(0) {
            Some(c @ ('r' | 'b' | 'c')) => c,
            _ => return false,
        };
        let mut j = 1;
        let mut raw = c == 'r';
        if (c == 'b' || c == 'c') && self.peek(1) == Some('r') {
            raw = true;
            j = 2;
        }
        let mut hashes = 0;
        while self.peek(j) == Some('#') {
            hashes += 1;
            j += 1;
        }
        if self.peek(j) == Some('"') && (raw || hashes == 0) {
            // `r#ident` never reaches here (no quote after hashes);
            // non-raw prefixes must have zero hashes.
            if !raw && hashes > 0 {
                return false;
            }
            let line = self.line;
            self.i += j + 1;
            self.string_body(raw, hashes, line);
            return true;
        }
        if c == 'b' && self.peek(1) == Some('\'') {
            let line = self.line;
            self.i += 2;
            self.char_body(line);
            return true;
        }
        false
    }

    fn number(&mut self) {
        let start = self.i;
        let line = self.line;
        let mut saw_dot = false;
        while let Some(d) = self.peek(0) {
            if d.is_ascii_alphanumeric() || d == '_' {
                self.i += 1;
                continue;
            }
            // A '.' belongs to the number only when followed by a digit
            // (ranges `1..8` and calls `1.max(x)` stay punctuation).
            if d == '.' && !saw_dot && self.peek(1).is_some_and(|e| e.is_ascii_digit()) {
                saw_dot = true;
                self.i += 1;
                continue;
            }
            break;
        }
        let text: String = self.chars[start..self.i].iter().collect();
        let float = saw_dot
            || text.ends_with("f32")
            || text.ends_with("f64")
            || (text.contains(['e', 'E']) && !text.starts_with("0x") && !text.starts_with("0b"));
        self.push(TokenKind::Num { float }, text, line);
    }

    fn ident(&mut self) {
        let start = self.i;
        let line = self.line;
        while self
            .peek(0)
            .is_some_and(|d| d.is_alphanumeric() || d == '_')
        {
            self.i += 1;
        }
        let mut text: String = self.chars[start..self.i].iter().collect();
        // Raw identifier `r#name`.
        if text == "r" && self.peek(0) == Some('#') {
            self.i += 1;
            let istart = self.i;
            while self
                .peek(0)
                .is_some_and(|d| d.is_alphanumeric() || d == '_')
            {
                self.i += 1;
            }
            text = self.chars[istart..self.i].iter().collect();
        }
        self.push(TokenKind::Ident, text, line);
    }

    fn run(mut self) -> LexedFile {
        while let Some(c) = self.peek(0) {
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if self.try_prefixed_literal() {
                // consumed
            } else if c == '"' {
                let line = self.line;
                self.i += 1;
                self.string_body(false, 0, line);
            } else if c == '\'' {
                let line = self.line;
                // Char literal vs lifetime: escaped, or a single char
                // closed by `'`, is a char; otherwise a lifetime.
                if self.peek(1) == Some('\\') || self.peek(2) == Some('\'') {
                    self.i += 1;
                    self.char_body(line);
                } else {
                    self.i += 1;
                    let start = self.i;
                    while self
                        .peek(0)
                        .is_some_and(|d| d.is_alphanumeric() || d == '_')
                    {
                        self.i += 1;
                    }
                    let text = self.chars[start..self.i].iter().collect();
                    self.push(TokenKind::Lifetime, text, line);
                }
            } else if c.is_ascii_digit() {
                self.number();
            } else if c.is_alphabetic() || c == '_' {
                self.ident();
            } else {
                let line = self.line;
                self.push(TokenKind::Punct, c.to_string(), line);
                self.i += 1;
            }
        }
        self.out
    }
}

/// Lex `src` into tokens and comments. Never fails: unterminated
/// constructs consume to end of input (the tool lints code that already
/// compiles, so this only matters for resilience).
pub fn lex(src: &str) -> LexedFile {
    Scanner {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: LexedFile::default(),
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn line_comments_are_not_tokens() {
        let f = lex("let x = 1; // unsafe Instant::now() env::var\nlet y = 2;");
        assert!(!f.tokens.iter().any(|t| t.text == "unsafe"));
        assert!(!f.tokens.iter().any(|t| t.text == "Instant"));
        assert_eq!(f.comments.len(), 1);
        assert!(f.comments[0].text.contains("Instant::now"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner unsafe */ still comment */ b";
        let f = lex(src);
        assert_eq!(idents(src), ["a", "b"]);
        assert_eq!(f.comments.len(), 1);
        assert!(f.comments[0].text.contains("inner unsafe"));
        assert!(f.comments[0].text.ends_with("*/"));
    }

    #[test]
    fn block_comment_line_span() {
        let f = lex("x\n/* one\ntwo\nthree */\ny");
        assert_eq!(f.comments[0].first_line, 2);
        assert_eq!(f.comments[0].last_line, 4);
        let y = f.tokens.iter().find(|t| t.text == "y").unwrap();
        assert_eq!(y.line, 5);
    }

    #[test]
    fn comment_markers_inside_strings_are_text() {
        let f = lex(r#"let s = "// not a comment /* nor this";"#);
        assert!(f.comments.is_empty());
        let s = f.tokens.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert_eq!(s.text, "// not a comment /* nor this");
    }

    #[test]
    fn raw_strings_with_hashes() {
        let f = lex(r####"let s = r##"quote " and hash "# unsafe"##; let t = 1;"####);
        let s = f.tokens.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert_eq!(s.text, r###"quote " and hash "# unsafe"###);
        // The `unsafe` inside the raw string is not an ident token.
        assert!(!f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "unsafe"));
        assert!(f.tokens.iter().any(|t| t.text == "t"));
    }

    #[test]
    fn byte_and_c_strings() {
        let f = lex(r##"let a = b"bytes"; let b = br#"raw bytes"#; let c = c"cstr";"##);
        let strs: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, ["bytes", "raw bytes", "cstr"]);
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let f = lex(r#"let s = "he said \"unsafe\"";"#);
        let s = f.tokens.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert!(s.text.contains("unsafe"));
        assert!(!f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "unsafe"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let u = '_'; let e = '\\n'; let s: &'static str = \"\"; }";
        let f = lex(src);
        let chars: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, ["x", "_", "\\n"]);
        let lifetimes: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a", "static"]);
    }

    #[test]
    fn quote_char_literal() {
        // '\'' — escaped quote char still closes correctly.
        let f = lex(r"let q = '\'';");
        assert!(f.tokens.iter().any(|t| t.kind == TokenKind::Char));
        assert!(f.tokens.iter().any(|t| t.text == ";"));
    }

    #[test]
    fn byte_char_literal() {
        let f = lex(r"let b = b'\n'; let m = b'x';");
        let chars: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, ["\\n", "x"]);
    }

    #[test]
    fn numbers_and_floats() {
        let f =
            lex("let a = 1; let b = 2.5; let c = 1_000; let d = 3f64; let e = 1e-3; let r = 1..8;");
        let floats: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Num { float: true }))
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(floats, ["2.5", "3f64", "1e"]);
        let ints: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Num { float: false }))
            .map(|t| t.text.as_str())
            .collect();
        assert!(ints.contains(&"1_000"));
        // Range `1..8` stays integer + punct + integer.
        assert!(ints.contains(&"8"));
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#match = 1;"), ["let", "match"]);
    }

    #[test]
    fn idents_starting_with_string_prefix_letters() {
        assert_eq!(
            idents("let rope = bail; let cost = ribbon; break_even(crumb);"),
            [
                "let",
                "rope",
                "bail",
                "let",
                "cost",
                "ribbon",
                "break_even",
                "crumb"
            ]
        );
    }

    #[test]
    fn token_lines_are_accurate() {
        let f = lex("a\nb\n\nc");
        let lines: Vec<usize> = f.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn multiline_string_tracks_lines() {
        let f = lex("let s = \"one\ntwo\";\nnext");
        let next = f.tokens.iter().find(|t| t.text == "next").unwrap();
        assert_eq!(next.line, 3);
    }
}
