//! CLI for the workspace invariant checker.
//!
//! ```text
//! galactos-lint [--root DIR] [--report PATH] [--print-unsafe] [--quiet]
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.
//! `--print-unsafe` emits registry-format lines for every discovered
//! `unsafe` site (the documented way to regenerate
//! `UNSAFE_REGISTRY.txt`) and skips the report write.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use galactos_lint::{find_workspace_root, lint_root, registry, report};

struct Opts {
    root: Option<PathBuf>,
    report: Option<PathBuf>,
    print_unsafe: bool,
    quiet: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: None,
        report: None,
        print_unsafe: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let v = args.next().ok_or("--root needs a directory")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--report" => {
                let v = args.next().ok_or("--report needs a path")?;
                opts.report = Some(PathBuf::from(v));
            }
            "--print-unsafe" => opts.print_unsafe = true,
            "--quiet" => opts.quiet = true,
            "--help" | "-h" => {
                return Err("usage: galactos-lint [--root DIR] [--report PATH] \
                            [--print-unsafe] [--quiet]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let root = match opts.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| find_workspace_root(&cwd))
    }) {
        Some(r) => r,
        None => {
            eprintln!("galactos-lint: no workspace root found (use --root)");
            return ExitCode::from(2);
        }
    };

    let outcome = match lint_root(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("galactos-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.print_unsafe {
        for site in &outcome.unsafe_sites {
            println!("{}", site.entry.to_line());
        }
        return if outcome.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    for f in &outcome.findings {
        println!("{} {}:{} — {}", f.rule, f.file, f.line, f.message);
    }

    let report_path = opts.report.unwrap_or_else(|| root.join("LINT_REPORT.json"));
    let json = report::render(&outcome);
    if let Err(e) = std::fs::write(&report_path, json) {
        eprintln!("galactos-lint: cannot write {}: {e}", report_path.display());
        return ExitCode::from(2);
    }

    if !opts.quiet {
        println!(
            "galactos-lint: {} files scanned, {} finding(s), {} unsafe site(s) \
             (registry: {})",
            outcome.files_scanned,
            outcome.findings.len(),
            outcome.unsafe_sites.len(),
            registry::REGISTRY_FILE
        );
    }
    if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
