//! Machine-readable output: `LINT_REPORT.json`.
//!
//! Hand-rolled in the same spirit as the bench crate's JSON module —
//! insertion-ordered keys, stable formatting, no dependencies — so the
//! committed report diffs cleanly and CI can archive it next to the
//! bench artifacts.

use crate::rules::LintOutcome;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the full report. Findings arrive already sorted by
/// `(file, line, rule)`; unsafe sites in discovery order.
pub fn render(outcome: &LintOutcome) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"tool\": \"galactos-lint\",\n");
    s.push_str(&format!(
        "  \"version\": \"{}\",\n",
        escape(env!("CARGO_PKG_VERSION"))
    ));
    s.push_str(&format!(
        "  \"files_scanned\": {},\n",
        outcome.files_scanned
    ));
    s.push_str(&format!(
        "  \"status\": \"{}\",\n",
        if outcome.is_clean() {
            "clean"
        } else {
            "findings"
        }
    ));
    s.push_str(&format!(
        "  \"finding_count\": {},\n",
        outcome.findings.len()
    ));
    s.push_str("  \"findings\": [");
    for (i, f) in outcome.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            escape(&f.rule),
            escape(&f.file),
            f.line,
            escape(&f.message)
        ));
    }
    if !outcome.findings.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n");
    s.push_str("  \"unsafe_sites\": [");
    for (i, site) in outcome.unsafe_sites.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"kind\": \"{}\", \"context\": \"{}\"}}",
            escape(&site.entry.file),
            escape(&site.entry.kind),
            escape(&site.entry.context)
        ));
    }
    if !outcome.unsafe_sites.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Entry;
    use crate::rules::{Finding, UnsafeSite};

    #[test]
    fn clean_report_shape() {
        let out = LintOutcome {
            files_scanned: 7,
            ..Default::default()
        };
        let json = render(&out);
        assert!(json.contains("\"status\": \"clean\""));
        assert!(json.contains("\"finding_count\": 0"));
        assert!(json.contains("\"files_scanned\": 7"));
        assert!(json.contains("\"findings\": []"));
    }

    #[test]
    fn findings_and_escaping() {
        let out = LintOutcome {
            files_scanned: 1,
            findings: vec![Finding {
                rule: "W-CAST".to_string(),
                file: "crates/catalog/src/io.rs".to_string(),
                line: 12,
                message: "bare `as u32` with \"quotes\"\nand newline".to_string(),
            }],
            unsafe_sites: vec![UnsafeSite {
                line: 3,
                entry: Entry {
                    file: "crates/math/src/fft.rs".to_string(),
                    kind: "block".to_string(),
                    context: "fft_cols_raw".to_string(),
                },
            }],
        };
        let json = render(&out);
        assert!(json.contains("\"status\": \"findings\""));
        assert!(json.contains("\\\"quotes\\\"\\nand newline"));
        assert!(json.contains("\"context\": \"fft_cols_raw\""));
        // No raw control characters inside strings.
        for line in json.lines() {
            assert!(!line.contains('\t'));
        }
    }
}
