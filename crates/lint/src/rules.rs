//! The rule engine: five contract rules, inline suppressions, and the
//! unsafe-site collector that feeds the committed registry.
//!
//! Every rule operates on the lexed token stream (see [`crate::lexer`])
//! so nothing ever fires inside a string, char literal, or comment.
//! Scoping is by path: each rule documents exactly which files it
//! watches and which it deliberately ignores (bench code, tests,
//! examples are allowed clocks; the three knob-resolution modules are
//! allowed env reads; and so on).
//!
//! # Suppressions
//!
//! A finding on line `L` is suppressed by a *plain* (non-doc, non-
//! block) comment of the form
//!
//! ```text
//! code(); // lint:allow(W-RULE): a real reason
//! ```
//!
//! either trailing on `L` itself or alone on the line(s) immediately
//! above the first code line it governs. The reason is mandatory: a
//! bare suppression, an empty reason, or an unknown rule id is itself
//! reported (rule id `W-ALLOW`) and the suppression stays inert.
//! Registry mismatches (unregistered/stale unsafe sites) are not
//! suppressible — that is the point of the registry.

use crate::lexer::{lex, LexedFile, Token, TokenKind};
use crate::registry::{self, Entry};

/// The five contract rules, in report order.
pub const RULES: [&str; 5] = ["W-UNSAFE", "W-CLOCK", "W-ENV", "W-DETERMINISM", "W-CAST"];

/// Pseudo-rule id for malformed suppressions.
pub const RULE_ALLOW: &str = "W-ALLOW";

/// One source file handed to the engine: a workspace-relative path
/// (forward slashes) and its contents.
pub struct SourceFile {
    pub path: String,
    pub src: String,
}

/// One diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub rule: String,
    pub file: String,
    pub line: usize,
    pub message: String,
}

impl Finding {
    fn new(rule: &str, file: &str, line: usize, message: String) -> Self {
        Finding {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            message,
        }
    }
}

/// An `unsafe` site discovered by W-UNSAFE, in registry terms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnsafeSite {
    pub line: usize,
    pub entry: Entry,
}

/// Everything one engine run produces.
#[derive(Debug, Default)]
pub struct LintOutcome {
    pub findings: Vec<Finding>,
    pub unsafe_sites: Vec<UnsafeSite>,
    pub files_scanned: usize,
}

impl LintOutcome {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Run the whole engine over `files`, then reconcile unsafe sites
/// against `registry_text` (the contents of `UNSAFE_REGISTRY.txt`;
/// `None` means the file is absent, which is only clean if the tree
/// has no unsafe at all).
pub fn lint_files(files: &[SourceFile], registry_text: Option<&str>) -> LintOutcome {
    let mut out = LintOutcome {
        files_scanned: files.len(),
        ..Default::default()
    };
    for f in files {
        lint_one(f, &mut out);
    }
    registry::reconcile(&out.unsafe_sites, registry_text, &mut out.findings);
    out.findings
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    out
}

// ---------------------------------------------------------------------------
// Per-file pass
// ---------------------------------------------------------------------------

fn lint_one(f: &SourceFile, out: &mut LintOutcome) {
    let lexed = lex(&f.src);
    let (suppressions, mut allow_findings) = collect_suppressions(f, &lexed);
    out.findings.append(&mut allow_findings);

    let mut raw = Vec::new();
    rule_unsafe(f, &lexed, &mut raw, &mut out.unsafe_sites);
    rule_clock(f, &lexed, &mut raw);
    rule_env(f, &lexed, &mut raw);
    rule_determinism(f, &lexed, &mut raw);
    rule_cast(f, &lexed, &mut raw);

    for finding in raw {
        let key = (finding.rule.clone(), finding.line);
        if !suppressions.contains(&key) {
            out.findings.push(finding);
        }
    }
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// Parse every `lint:allow` comment. Returns the set of
/// `(rule, line)` pairs that are validly suppressed, plus `W-ALLOW`
/// findings for malformed ones.
fn collect_suppressions(f: &SourceFile, lexed: &LexedFile) -> (Vec<(String, usize)>, Vec<Finding>) {
    let mut suppressed = Vec::new();
    let mut findings = Vec::new();
    for c in &lexed.comments {
        // Only plain `//` comments qualify: strip the slashes, then
        // whitespace. Doc comments leave a `!` or are prose that does
        // not *start* with the marker, so documentation that merely
        // mentions the syntax never becomes a suppression.
        let body = c.text.trim_start_matches('/').trim_start();
        let Some(rest) = body.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            findings.push(Finding::new(
                RULE_ALLOW,
                &f.path,
                c.first_line,
                "malformed suppression: missing `)`".to_string(),
            ));
            continue;
        };
        let rule = rest[..close].trim();
        let after = &rest[close + 1..];
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if !RULES.contains(&rule) {
            findings.push(Finding::new(
                RULE_ALLOW,
                &f.path,
                c.first_line,
                format!("suppression names unknown rule `{rule}`; suppression ignored"),
            ));
            continue;
        }
        if reason.is_empty() {
            findings.push(Finding::new(
                RULE_ALLOW,
                &f.path,
                c.first_line,
                format!(
                    "bare suppression of {rule}: a `lint:allow` must carry \
                     `: <reason>`; suppression ignored"
                ),
            ));
            continue;
        }
        // Trailing on a code line governs that line; a standalone
        // comment governs the next line that has code.
        let target = if lexed.line_has_code(c.first_line) {
            Some(c.first_line)
        } else {
            lexed
                .tokens
                .iter()
                .find(|t| t.line > c.last_line)
                .map(|t| t.line)
        };
        if let Some(line) = target {
            suppressed.push((rule.to_string(), line));
        }
    }
    (suppressed, findings)
}

// ---------------------------------------------------------------------------
// Path scoping helpers
// ---------------------------------------------------------------------------

fn has_component(path: &str, name: &str) -> bool {
    path.split('/').any(|c| c == name)
}

/// Test/example/bench *directories* are exempt from the runtime-contract
/// rules (W-CLOCK, W-ENV): measurement and demo code may read clocks and
/// set knobs freely.
fn is_test_or_example(path: &str) -> bool {
    has_component(path, "tests")
        || has_component(path, "examples")
        || has_component(path, "benches")
}

// ---------------------------------------------------------------------------
// W-UNSAFE — every unsafe fn/block/impl/trait carries a SAFETY comment
// and matches the committed registry.
// ---------------------------------------------------------------------------

fn rule_unsafe(
    f: &SourceFile,
    lexed: &LexedFile,
    raw: &mut Vec<Finding>,
    sites: &mut Vec<UnsafeSite>,
) {
    let toks = &lexed.tokens;
    let ctx = fn_contexts(toks);
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "unsafe" {
            continue;
        }
        let next = toks.get(i + 1);
        let (kind, context) = match next {
            Some(n) if n.kind == TokenKind::Ident && n.text == "fn" => {
                let name = toks
                    .get(i + 2)
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text.clone())
                    .unwrap_or_else(|| ctx[i].clone());
                ("fn", name)
            }
            Some(n) if n.kind == TokenKind::Ident && (n.text == "impl" || n.text == "trait") => {
                let kind = if n.text == "impl" { "impl" } else { "trait" };
                (kind, impl_context(toks, i))
            }
            // `#[unsafe(...)]` attributes (Rust 2024) are not sites.
            Some(n) if n.kind == TokenKind::Punct && n.text == "(" => continue,
            _ => ("block", ctx[i].clone()),
        };
        if !has_safety_doc(lexed, t.line) {
            raw.push(Finding::new(
                "W-UNSAFE",
                &f.path,
                t.line,
                format!(
                    "unsafe {kind} in `{context}` has no `// SAFETY:` comment \
                     (contiguous block above, or trailing on the same line)"
                ),
            ));
        }
        sites.push(UnsafeSite {
            line: t.line,
            entry: Entry {
                file: f.path.clone(),
                kind: kind.to_string(),
                context,
            },
        });
    }
}

/// For an `unsafe impl … for Target {`, the registry context is the
/// implementing type: the first ident after `for` (falling back to the
/// last ident before the opening brace for inherent impls).
fn impl_context(toks: &[Token], start: usize) -> String {
    let mut last_ident = None;
    let mut after_for = false;
    for t in toks.iter().skip(start + 1) {
        match t.kind {
            TokenKind::Punct if t.text == "{" => break,
            TokenKind::Ident if t.text == "for" => after_for = true,
            TokenKind::Ident => {
                last_ident = Some(t.text.clone());
                if after_for {
                    return t.text.clone();
                }
            }
            _ => {}
        }
    }
    last_ident.unwrap_or_else(|| "<impl>".to_string())
}

/// `true` if line `line` carries a SAFETY justification: a comment on
/// the line itself, or a contiguous comment block immediately above
/// (attribute lines may sit between), any line of which contains
/// `SAFETY` or the rustdoc `# Safety` section heading.
fn has_safety_doc(lexed: &LexedFile, line: usize) -> bool {
    let is_safety = |text: &str| text.contains("SAFETY") || text.contains("# Safety");
    if lexed.comments_on_line(line).any(|c| is_safety(&c.text)) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        if let Some(c) = lexed.comments_on_line(l).next() {
            if is_safety(&c.text) {
                return true;
            }
            l = c.first_line;
            continue;
        }
        if lexed.line_has_code(l) {
            if lexed.line_starts_attribute(l) {
                continue;
            }
            return false;
        }
        // Blank line: the justification must be contiguous.
        return false;
    }
    false
}

/// For every token index, the name of the enclosing `fn` (or
/// `<module>` at top level). Closures do not open a new context, so
/// unsafe blocks inside parallel closures attribute to the function
/// that owns them — which is what the registry wants to show.
fn fn_contexts(toks: &[Token]) -> Vec<String> {
    let mut out = Vec::with_capacity(toks.len());
    let mut stack: Vec<(String, usize)> = Vec::new();
    let mut brace_depth = 0usize;
    let mut paren_depth = 0usize;
    let mut pending: Option<String> = None;
    for (i, t) in toks.iter().enumerate() {
        out.push(
            stack
                .last()
                .map(|(n, _)| n.clone())
                .unwrap_or_else(|| "<module>".to_string()),
        );
        match t.kind {
            TokenKind::Ident if t.text == "fn" => {
                if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                    pending = Some(name.text.clone());
                }
            }
            TokenKind::Punct => match t.text.as_str() {
                "(" | "[" => paren_depth += 1,
                ")" | "]" => paren_depth = paren_depth.saturating_sub(1),
                "{" => {
                    brace_depth += 1;
                    if let Some(name) = pending.take() {
                        stack.push((name, brace_depth));
                    }
                }
                "}" => {
                    if stack.last().is_some_and(|&(_, d)| d == brace_depth) {
                        stack.pop();
                    }
                    brace_depth = brace_depth.saturating_sub(1);
                }
                // A `;` at type/signature level cancels a bodyless
                // trait-method declaration (but `[u8; 4]` inside
                // brackets does not).
                ";" if paren_depth == 0 => pending = None,
                _ => {}
            },
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// W-CLOCK — Instant::now only in bench code, the obs clock gate,
// core::timing, tests, examples, or behind a reasoned suppression at an
// instrument gate.
// ---------------------------------------------------------------------------

fn rule_clock(f: &SourceFile, lexed: &LexedFile, raw: &mut Vec<Finding>) {
    // obs::clock is the registered runtime gate: every compute-path
    // clock read funnels through its now_if/nanos_since, which count
    // reads so tests can pin "uninstrumented => zero reads". Only
    // clock.rs is sanctioned — the rest of crates/obs must route
    // through it like everyone else.
    if f.path.starts_with("crates/bench/")
        || f.path == "crates/core/src/timing.rs"
        || f.path == "crates/obs/src/clock.rs"
        || is_test_or_example(&f.path)
    {
        return;
    }
    for i in seq_matches(&lexed.tokens, &["Instant", ":", ":", "now"]) {
        raw.push(Finding::new(
            "W-CLOCK",
            &f.path,
            lexed.tokens[i].line,
            "Instant::now() on a compute path: clock reads must live in \
             crates/bench, obs::clock, core::timing, or behind an \
             instrument gate (now_if) carrying a reasoned lint:allow"
                .to_string(),
        ));
    }
}

// ---------------------------------------------------------------------------
// W-ENV — GALACTOS_* knob resolution happens in exactly three modules.
// ---------------------------------------------------------------------------

const ENV_ALLOWED: [&str; 3] = [
    "crates/core/src/kernel/backend.rs",
    "crates/core/src/estimator.rs",
    "crates/core/src/traversal/mod.rs",
];

fn rule_env(f: &SourceFile, lexed: &LexedFile, raw: &mut Vec<Finding>) {
    if ENV_ALLOWED.contains(&f.path.as_str()) || is_test_or_example(&f.path) {
        return;
    }
    for reader in ["var", "var_os", "vars", "vars_os"] {
        for i in seq_matches(&lexed.tokens, &["env", ":", ":", reader]) {
            raw.push(Finding::new(
                "W-ENV",
                &f.path,
                lexed.tokens[i].line,
                format!(
                    "env::{reader} outside the designated knob-resolution \
                     modules ({})",
                    ENV_ALLOWED.join(", ")
                ),
            ));
        }
    }
    for t in &lexed.tokens {
        // lint:allow(W-ENV): the rule implementation must name its own needle.
        if t.kind == TokenKind::Str && t.text.starts_with("GALACTOS_") {
            raw.push(Finding::new(
                "W-ENV",
                &f.path,
                t.line,
                format!(
                    "`{}` knob name referenced outside the designated \
                     knob-resolution modules",
                    t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// W-DETERMINISM — parallel float reductions must use the ordered
// two-arg fold/reduce helpers, never the raw unordered terminals.
// ---------------------------------------------------------------------------

const PAR_SOURCES: [&str; 8] = [
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_chunks_exact",
    "par_bridge",
    "par_windows",
];

const RAW_TERMINALS: [&str; 3] = ["sum", "product", "reduce_with"];

fn rule_determinism(f: &SourceFile, lexed: &LexedFile, raw: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || !PAR_SOURCES.contains(&t.text.as_str()) {
            continue;
        }
        // Forward span: the rest of the statement, with the chain
        // itself at depth 0 (closure bodies sit at depth >= 1).
        let mut depth = 0i32;
        let mut end = toks.len();
        let mut terminal: Option<usize> = None;
        for (j, u) in toks.iter().enumerate().skip(i + 1) {
            if u.kind == TokenKind::Punct {
                match u.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        depth -= 1;
                        if depth < 0 {
                            end = j;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        end = j;
                        break;
                    }
                    _ => {}
                }
                continue;
            }
            if depth == 0
                && u.kind == TokenKind::Ident
                && RAW_TERMINALS.contains(&u.text.as_str())
                && j > 0
                && toks[j - 1].kind == TokenKind::Punct
                && toks[j - 1].text == "."
                && toks
                    .get(j + 1)
                    .is_some_and(|v| v.kind == TokenKind::Punct && (v.text == "(" || v.text == ":"))
                && terminal.is_none()
            {
                terminal = Some(j);
            }
        }
        let Some(term) = terminal else { continue };
        // Float evidence anywhere in the statement (back to the
        // previous statement boundary, forward to the span end).
        let start = toks[..i]
            .iter()
            .rposition(|u| u.kind == TokenKind::Punct && matches!(u.text.as_str(), ";" | "{" | "}"))
            .map_or(0, |p| p + 1);
        let float_evidence = toks[start..end].iter().any(|u| match u.kind {
            TokenKind::Ident => u.text == "f64" || u.text == "f32",
            TokenKind::Num { float } => float,
            _ => false,
        });
        if float_evidence {
            raw.push(Finding::new(
                "W-DETERMINISM",
                &f.path,
                toks[term].line,
                format!(
                    "raw parallel float reduction `.{}()` after `.{}()`: use \
                     the two-arg `.fold(zero, f).reduce(zero, merge)` form — \
                     the vendored pool merges those in task order, so results \
                     are bit-stable across thread counts",
                    toks[term].text, t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// W-CAST — no bare `as` narrowing in the catalog header-parsing files.
// ---------------------------------------------------------------------------

const CAST_SCOPED: [&str; 2] = ["crates/catalog/src/io.rs", "crates/catalog/src/shard.rs"];

const NARROW_TARGETS: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

fn rule_cast(f: &SourceFile, lexed: &LexedFile, raw: &mut Vec<Finding>) {
    if !CAST_SCOPED.contains(&f.path.as_str()) {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "as" {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if target.kind == TokenKind::Ident && NARROW_TARGETS.contains(&target.text.as_str()) {
            raw.push(Finding::new(
                "W-CAST",
                &f.path,
                t.line,
                format!(
                    "bare `as {}` narrowing in catalog parsing: use \
                     `{}::try_from(..)` (untrusted header bytes must fail \
                     loudly, not wrap)",
                    target.text, target.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Token-sequence matching
// ---------------------------------------------------------------------------

/// Indices where the idents/puncts of `pat` occur consecutively.
fn seq_matches(toks: &[Token], pat: &[&str]) -> Vec<usize> {
    let mut out = Vec::new();
    if toks.len() < pat.len() {
        return out;
    }
    'outer: for i in 0..=toks.len() - pat.len() {
        for (k, want) in pat.iter().enumerate() {
            let t = &toks[i + k];
            let ok = match t.kind {
                TokenKind::Ident | TokenKind::Punct => t.text == *want,
                _ => false,
            };
            if !ok {
                continue 'outer;
            }
        }
        out.push(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> LintOutcome {
        lint_files(
            &[SourceFile {
                path: path.to_string(),
                src: src.to_string(),
            }],
            Some(""),
        )
    }

    fn rules_of(out: &LintOutcome) -> Vec<&str> {
        out.findings.iter().map(|f| f.rule.as_str()).collect()
    }

    // ----- W-CLOCK -----

    #[test]
    fn clock_fires_on_compute_path() {
        let out = run(
            "crates/core/src/engine.rs",
            "fn f() { let t = std::time::Instant::now(); }",
        );
        assert_eq!(rules_of(&out), ["W-CLOCK"]);
        assert_eq!(out.findings[0].line, 1);
    }

    #[test]
    fn clock_allowed_in_bench_timing_tests_examples() {
        for path in [
            "crates/bench/src/main.rs",
            "crates/core/src/timing.rs",
            "crates/obs/src/clock.rs",
            "crates/core/tests/perf.rs",
            "examples/quickstart.rs",
        ] {
            let out = run(path, "fn f() { let t = Instant::now(); }");
            assert!(out.is_clean(), "{path} should allow clocks");
        }
    }

    #[test]
    fn clock_in_obs_outside_clock_module_still_fires() {
        let out = run(
            "crates/obs/src/span.rs",
            "fn f() { let t = Instant::now(); }",
        );
        assert_eq!(rules_of(&out), ["W-CLOCK"]);
    }

    #[test]
    fn clock_in_comment_or_string_is_ignored() {
        let out = run(
            "crates/core/src/engine.rs",
            "// Instant::now() is forbidden here\nfn f() { let s = \"Instant::now\"; }",
        );
        assert!(out.is_clean());
    }

    #[test]
    fn clock_suppression_with_reason() {
        let out = run(
            "crates/core/src/engine.rs",
            "fn now_if(i: bool) { // lint:allow(W-CLOCK): gated by instrument flag\n    let t = Instant::now();\n}",
        );
        // Trailing comment governs line 1, but the call is line 2 — use
        // a standalone comment above instead.
        assert_eq!(rules_of(&out), ["W-CLOCK"]);
        let out = run(
            "crates/core/src/engine.rs",
            "fn now_if(i: bool) {\n    // lint:allow(W-CLOCK): gated by instrument flag\n    let t = Instant::now();\n}",
        );
        assert!(out.is_clean());
    }

    #[test]
    fn bare_suppression_is_a_finding_and_inert() {
        let out = run(
            "crates/core/src/engine.rs",
            "fn f() {\n    // lint:allow(W-CLOCK)\n    let t = Instant::now();\n}",
        );
        let mut rules = rules_of(&out);
        rules.sort_unstable();
        assert_eq!(rules, ["W-ALLOW", "W-CLOCK"]);
    }

    #[test]
    fn unknown_rule_suppression_is_a_finding() {
        let out = run(
            "crates/core/src/lib.rs",
            "// lint:allow(W-BOGUS): some reason\nfn f() {}",
        );
        assert_eq!(rules_of(&out), ["W-ALLOW"]);
    }

    #[test]
    fn doc_comment_mentioning_syntax_is_not_a_suppression() {
        let out = run(
            "crates/core/src/lib.rs",
            "/// Suppress with `// lint:allow(W-BOGUS): reason` inline.\nfn f() {}",
        );
        assert!(out.is_clean());
    }

    // ----- W-ENV -----

    #[test]
    fn env_fires_outside_designated_modules() {
        let out = run(
            "crates/grid/src/mesh.rs",
            "fn f() { let v = std::env::var(\"GALACTOS_MESH\"); }",
        );
        // Both the read and the knob literal fire.
        assert_eq!(rules_of(&out), ["W-ENV", "W-ENV"]);
    }

    #[test]
    fn env_allowed_in_resolution_modules() {
        for path in ENV_ALLOWED {
            let out = run(path, "fn f() { let v = std::env::var(\"GALACTOS_X\"); }");
            assert!(out.is_clean(), "{path} is a designated resolver");
        }
    }

    #[test]
    fn env_allowed_in_tests() {
        let out = run(
            "crates/core/tests/knobs.rs",
            "fn f() { std::env::set_var(\"GALACTOS_KERNEL\", \"simd\"); let v = std::env::var(\"GALACTOS_KERNEL\"); }",
        );
        assert!(out.is_clean());
    }

    // ----- W-DETERMINISM -----

    #[test]
    fn determinism_fires_on_raw_float_sum() {
        let out = run(
            "crates/core/src/engine.rs",
            "fn f(xs: &[f64]) -> f64 { xs.par_iter().map(|&x| x * 2.0).sum() }",
        );
        assert_eq!(rules_of(&out), ["W-DETERMINISM"]);
    }

    #[test]
    fn determinism_fires_on_reduce_with_turbofish_sum() {
        let out = run(
            "crates/core/src/engine.rs",
            "fn f(xs: &[f64]) -> f64 { let s = xs.par_iter().copied().sum::<f64>(); s }",
        );
        assert_eq!(rules_of(&out), ["W-DETERMINISM"]);
        let out = run(
            "crates/core/src/engine.rs",
            "fn g(xs: &[f64]) { let m = xs.par_iter().copied().reduce_with(f64::max); let _ = m; }",
        );
        assert_eq!(rules_of(&out), ["W-DETERMINISM"]);
    }

    #[test]
    fn determinism_allows_ordered_two_arg_forms() {
        let out = run(
            "crates/core/src/engine.rs",
            "fn f(xs: &[f64]) -> f64 { xs.par_iter().fold(|| 0.0f64, |a, &x| a + x).reduce(|| 0.0f64, |a, b| a + b) }",
        );
        assert!(out.is_clean());
    }

    #[test]
    fn determinism_ignores_integer_sums_and_serial_sums() {
        let out = run(
            "crates/core/src/engine.rs",
            "fn f(xs: &[u64]) -> u64 { xs.par_iter().sum() }\nfn g(xs: &[f64]) -> f64 { xs.iter().sum() }",
        );
        assert!(out.is_clean());
    }

    #[test]
    fn determinism_sees_float_evidence_in_closure() {
        let out = run(
            "crates/core/src/engine.rs",
            "fn f(xs: &[u64]) -> f64 { xs.par_iter().map(|&x| x as f64 * 0.5).sum() }",
        );
        assert_eq!(rules_of(&out), ["W-DETERMINISM"]);
    }

    #[test]
    fn determinism_ignores_sum_inside_nested_closure_statement() {
        // The .sum() here is serial, inside a closure body (depth >= 1
        // relative to the par chain), so it must not be attributed to
        // the parallel chain.
        let out = run(
            "crates/core/src/engine.rs",
            "fn f(xs: &[Vec<f64>]) { xs.par_iter().for_each(|v| { let s: f64 = v.iter().sum(); drop(s); }); }",
        );
        assert!(out.is_clean());
    }

    // ----- W-CAST -----

    #[test]
    fn cast_fires_only_in_catalog_parsing_files() {
        let src = "fn f(n: u64) -> usize { n as usize }";
        let out = run("crates/catalog/src/shard.rs", src);
        assert_eq!(rules_of(&out), ["W-CAST"]);
        let out = run("crates/catalog/src/io.rs", src);
        assert_eq!(rules_of(&out), ["W-CAST"]);
        let out = run("crates/grid/src/mesh.rs", src);
        assert!(out.is_clean());
    }

    #[test]
    fn cast_allows_widening_and_try_from() {
        let out = run(
            "crates/catalog/src/shard.rs",
            "fn f(n: u32) -> u64 { let a = n as u64; let b = usize::try_from(n).expect(\"fits\"); a + b as u64 }",
        );
        assert!(out.is_clean());
    }

    // ----- W-UNSAFE -----

    #[test]
    fn unsafe_block_without_safety_comment_fires() {
        let out = run(
            "crates/math/src/fft.rs",
            "fn f(p: *const f64) -> f64 { unsafe { *p } }",
        );
        // Missing SAFETY + unregistered (empty registry).
        let mut rules = rules_of(&out);
        rules.sort_unstable();
        assert_eq!(rules, ["W-UNSAFE", "W-UNSAFE"]);
    }

    #[test]
    fn unsafe_with_safety_comment_and_registry_is_clean() {
        let src = "fn f(p: *const f64) -> f64 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}";
        let out = lint_files(
            &[SourceFile {
                path: "crates/math/src/fft.rs".to_string(),
                src: src.to_string(),
            }],
            Some("crates/math/src/fft.rs | block | f\n"),
        );
        assert!(out.is_clean(), "findings: {:?}", out.findings);
        assert_eq!(out.unsafe_sites.len(), 1);
        assert_eq!(out.unsafe_sites[0].entry.context, "f");
    }

    #[test]
    fn unsafe_fn_accepts_doc_safety_section() {
        let src = "/// Does things.\n///\n/// # Safety\n/// `p` must be valid.\nunsafe fn read(p: *const f64) -> f64 { *p }";
        let out = lint_files(
            &[SourceFile {
                path: "crates/math/src/fft.rs".to_string(),
                src: src.to_string(),
            }],
            Some("crates/math/src/fft.rs | fn | read\n"),
        );
        assert!(out.is_clean(), "findings: {:?}", out.findings);
    }

    #[test]
    fn unsafe_impl_context_is_implementing_type() {
        let src = "// SAFETY: columns are disjoint.\nunsafe impl Sync for DisjointCols {}";
        let out = lint_files(
            &[SourceFile {
                path: "crates/math/src/fft.rs".to_string(),
                src: src.to_string(),
            }],
            Some("crates/math/src/fft.rs | impl | DisjointCols\n"),
        );
        assert!(out.is_clean(), "findings: {:?}", out.findings);
        assert_eq!(out.unsafe_sites[0].entry.kind, "impl");
    }

    #[test]
    fn stale_registry_entry_fires() {
        let out = lint_files(
            &[SourceFile {
                path: "crates/math/src/fft.rs".to_string(),
                src: "fn f() {}".to_string(),
            }],
            Some("crates/math/src/fft.rs | block | gone\n"),
        );
        assert_eq!(rules_of(&out), ["W-UNSAFE"]);
        assert!(out.findings[0].message.contains("stale"));
        assert_eq!(out.findings[0].file, registry::REGISTRY_FILE);
    }

    #[test]
    fn unsafe_in_closure_attributes_to_enclosing_fn() {
        let src = "fn outer(rows: &[*mut f64]) {\n    rows.iter().for_each(|r| {\n        // SAFETY: rows are disjoint.\n        unsafe { drop(r) }\n    });\n}";
        let out = run("crates/math/src/fft.rs", src);
        assert_eq!(out.unsafe_sites.len(), 1);
        assert_eq!(out.unsafe_sites[0].entry.context, "outer");
    }

    #[test]
    fn safety_comment_separated_by_blank_line_does_not_count() {
        let out = run(
            "crates/math/src/fft.rs",
            "fn f(p: *const f64) -> f64 {\n    // SAFETY: stale, too far away.\n\n    unsafe { *p }\n}",
        );
        assert!(rules_of(&out).contains(&"W-UNSAFE"));
    }
}
