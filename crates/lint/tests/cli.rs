//! End-to-end CLI behavior: exit codes, report emission, and the
//! `--print-unsafe` registry workflow, pinned through the real binary
//! (`CARGO_BIN_EXE_galactos-lint`).

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_galactos-lint"))
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn temp_report(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("galactos-lint-{tag}-{}.json", std::process::id()))
}

#[test]
fn violations_exit_nonzero_with_report() {
    let report = temp_report("violations");
    let out = bin()
        .arg("--root")
        .arg(fixture("violations"))
        .arg("--report")
        .arg(&report)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "findings must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Human diagnostics carry file:line anchors.
    assert!(
        stdout.contains("crates/core/src/clock.rs:8"),
        "missing anchor in:\n{stdout}"
    );
    let json = std::fs::read_to_string(&report).expect("report written");
    std::fs::remove_file(&report).ok();
    assert!(json.contains("\"status\": \"findings\""));
    for rule in [
        "W-UNSAFE",
        "W-CLOCK",
        "W-ENV",
        "W-DETERMINISM",
        "W-CAST",
        "W-ALLOW",
    ] {
        assert!(json.contains(rule), "report missing {rule}:\n{json}");
    }
}

#[test]
fn clean_exits_zero_with_clean_report() {
    let report = temp_report("clean");
    let out = bin()
        .arg("--root")
        .arg(fixture("clean"))
        .arg("--report")
        .arg(&report)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "clean tree must exit 0");
    let json = std::fs::read_to_string(&report).expect("report written");
    std::fs::remove_file(&report).ok();
    assert!(json.contains("\"status\": \"clean\""));
    assert!(json.contains("\"finding_count\": 0"));
    // The registered unsafe site still shows up in the inventory.
    assert!(json.contains("\"context\": \"read_cell\""));
}

#[test]
fn print_unsafe_emits_registry_lines() {
    let out = bin()
        .arg("--root")
        .arg(fixture("clean"))
        .arg("--print-unsafe")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.trim(), "crates/math/src/fft.rs | block | read_cell");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = bin().arg("--frobnicate").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn workspace_tree_is_clean_through_the_binary() {
    // The acceptance criterion, end to end: the real workspace lints
    // clean through the shipped binary.
    let root = galactos_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let report = temp_report("workspace");
    let out = bin()
        .arg("--root")
        .arg(&root)
        .arg("--report")
        .arg(&report)
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    std::fs::remove_file(&report).ok();
    assert_eq!(out.status.code(), Some(0), "workspace not clean:\n{stdout}");
}
