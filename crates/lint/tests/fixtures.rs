//! The fixture corpus: a must-not-fire tree (`fixtures/clean`) where
//! every rule has a legitimate near-miss, and a must-fire tree
//! (`fixtures/violations`) seeding exactly one violation per rule.
//! Both trees are excluded from the workspace scan (`fixtures/` is an
//! excluded directory) and only ever linted by pointing the engine at
//! them directly.

use std::path::{Path, PathBuf};

use galactos_lint::{lint_root, LintOutcome};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn run(name: &str) -> LintOutcome {
    lint_root(&fixture(name)).expect("fixture tree is readable")
}

#[test]
fn clean_tree_is_clean() {
    let out = run("clean");
    let rendered: Vec<String> = out
        .findings
        .iter()
        .map(|f| format!("{} {}:{} {}", f.rule, f.file, f.line, f.message))
        .collect();
    assert!(
        out.is_clean(),
        "clean fixture tree produced findings:\n{}",
        rendered.join("\n")
    );
    // The documented, registered unsafe block was still *seen*.
    assert_eq!(out.unsafe_sites.len(), 1);
    assert_eq!(out.unsafe_sites[0].entry.context, "read_cell");
}

#[test]
fn violations_tree_fires_every_rule() {
    let out = run("violations");
    let got: Vec<(String, String, usize)> = out
        .findings
        .iter()
        .map(|f| (f.rule.clone(), f.file.clone(), f.line))
        .collect();
    let want: Vec<(String, String, usize)> = [
        ("W-UNSAFE", "UNSAFE_REGISTRY.txt", 3), // stale entry
        ("W-CAST", "crates/catalog/src/io.rs", 4),
        ("W-ALLOW", "crates/core/src/clock.rs", 7), // bare suppression
        ("W-CLOCK", "crates/core/src/clock.rs", 8), // ... which stays inert
        ("W-DETERMINISM", "crates/core/src/reduce.rs", 5),
        ("W-ENV", "crates/grid/src/env.rs", 5), // env::var read
        ("W-ENV", "crates/grid/src/env.rs", 5), // GALACTOS_ literal
        ("W-UNSAFE", "crates/math/src/mem.rs", 5), // missing SAFETY
        ("W-UNSAFE", "crates/math/src/mem.rs", 5), // unregistered
        ("W-CLOCK", "crates/obs/src/span.rs", 7), // outside obs::clock
    ]
    .into_iter()
    .map(|(r, f, l)| (r.to_string(), f.to_string(), l))
    .collect();
    assert_eq!(got, want, "full findings: {:#?}", out.findings);
}

#[test]
fn every_rule_id_appears_in_violations() {
    let out = run("violations");
    for rule in galactos_lint::rules::RULES {
        assert!(
            out.findings.iter().any(|f| f.rule == rule),
            "rule {rule} has no must-fire fixture"
        );
    }
    assert!(out
        .findings
        .iter()
        .any(|f| f.rule == galactos_lint::rules::RULE_ALLOW));
}
