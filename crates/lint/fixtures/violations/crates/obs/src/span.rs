//! Must-fire: only clock.rs is sanctioned inside crates/obs — the rest
//! of the crate routes through it like every other runtime module.

use std::time::Instant;

pub fn enter() -> Instant {
    Instant::now()
}
