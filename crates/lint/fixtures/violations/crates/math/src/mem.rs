//! Must-fire: W-UNSAFE twice — no SAFETY comment, and the site is not
//! in the fixture registry (which instead lists a stale entry).

pub fn peek(data: &[f64]) -> f64 {
    unsafe { *data.as_ptr() }
}
