//! Must-fire: W-CAST — a bare narrowing cast in catalog parsing.

pub fn header_count(raw: u64) -> u32 {
    raw as u32
}
