//! Must-fire: W-ENV twice — an env read and a knob literal, both
//! outside the designated resolution modules.

pub fn sneak_a_knob() -> Option<String> {
    std::env::var("GALACTOS_MESH").ok()
}
