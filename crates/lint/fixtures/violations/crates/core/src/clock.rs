//! Must-fire: W-CLOCK on a compute path, plus W-ALLOW for the bare
//! suppression (which therefore does not suppress anything).

use std::time::Instant;

pub fn hot_path() -> Instant {
    // lint:allow(W-CLOCK)
    Instant::now()
}
