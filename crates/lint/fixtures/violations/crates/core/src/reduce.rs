//! Must-fire: W-DETERMINISM — a raw parallel float reduction whose
//! result depends on task interleaving.

pub fn unstable_total(xs: &[f64]) -> f64 {
    xs.par_iter().map(|&x| x * 2.0).sum()
}
