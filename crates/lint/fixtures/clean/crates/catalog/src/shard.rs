//! Must-not-fire: checked conversions and widening casts are fine in
//! the catalog parsing files.

pub fn parse_count(raw: u64) -> usize {
    usize::try_from(raw).expect("count bounded by format limits")
}

pub fn widen(n: u32) -> u64 {
    n as u64
}
