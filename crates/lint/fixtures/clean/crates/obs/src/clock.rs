//! Must-not-fire: obs::clock is the registered runtime clock gate.

use std::time::Instant;

pub fn now_if(instrument: bool) -> Option<Instant> {
    if instrument {
        Some(Instant::now())
    } else {
        None
    }
}
