//! Must-not-fire: documented AND registered unsafe.

pub fn read_cell(data: &[f64], i: usize) -> f64 {
    debug_assert!(i < data.len());
    // SAFETY: `i` is bounds-checked by the caller contract above.
    unsafe { *data.as_ptr().add(i) }
}
