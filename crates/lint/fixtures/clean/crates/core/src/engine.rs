//! Must-not-fire cases for W-CLOCK (reasoned suppression at the gate)
//! and W-DETERMINISM (ordered two-arg reduction; integer parallel sum;
//! serial float sum).

use std::time::Instant;

pub fn now_if(instrument: bool) -> Option<Instant> {
    // lint:allow(W-CLOCK): the instrument gate itself; reached only
    // when the caller asked for timings.
    instrument.then(Instant::now)
}

pub fn ordered_sum(xs: &[f64]) -> f64 {
    xs.par_iter()
        .fold(|| 0.0f64, |acc, &x| acc + x)
        .reduce(|| 0.0f64, |a, b| a + b)
}

pub fn integer_total(xs: &[u64]) -> u64 {
    xs.par_iter().sum()
}

pub fn serial_float_total(xs: &[f64]) -> f64 {
    xs.iter().sum()
}
