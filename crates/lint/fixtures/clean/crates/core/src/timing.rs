//! Must-not-fire: core::timing owns the clock.

use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
