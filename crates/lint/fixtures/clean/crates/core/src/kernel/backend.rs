//! Must-not-fire: this path is a designated knob-resolution module.

pub const BACKEND_ENV: &str = "GALACTOS_KERNEL_BACKEND";

pub fn resolve() -> Option<String> {
    std::env::var(BACKEND_ENV).ok()
}
