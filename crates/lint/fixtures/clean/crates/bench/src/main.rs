//! Must-not-fire: bench code times whatever it wants.

use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    println!("{:?}", t0.elapsed());
}
