//! Cross-rank integration tests for the cluster simulator's
//! collectives under less-friendly conditions: odd rank counts, deep
//! recursive splits, interleaved traffic and sub-communicator isolation.

use galactos_cluster::{run_cluster, run_cluster_with_stacks};

#[test]
fn reduce_sum_on_root_only() {
    let results = run_cluster(6, |comm| {
        let data = vec![comm.rank() as f64; 3];
        comm.reduce_sum_f64(2, data)
    });
    for (r, res) in results.iter().enumerate() {
        if r == 2 {
            assert_eq!(res.as_ref().unwrap(), &vec![15.0, 15.0, 15.0]);
        } else {
            assert!(res.is_none());
        }
    }
}

#[test]
fn split_isolates_traffic_between_colors() {
    // Messages sent inside one sub-communicator must never be received
    // by the other, even with identical tags.
    let results = run_cluster(4, |mut comm| {
        let color = u64::from(comm.rank() % 2 == 1);
        let sub = comm.split(color);
        // Within each sub-comm of size 2: exchange rank markers.
        let peer = 1 - sub.rank();
        let got = sub.send_recv(peer, 5, comm.rank() as u64 * 100 + color);
        (color, got)
    });
    // Ranks 0,2 are color 0; ranks 1,3 color 1. Exchanges stay in color.
    assert_eq!(results[0], (0, 200));
    assert_eq!(results[2], (0, 0));
    assert_eq!(results[1], (1, 301));
    assert_eq!(results[3], (1, 101));
}

#[test]
fn three_level_recursive_split_with_odd_sizes() {
    // 11 ranks split recursively like the domain decomposition; at each
    // level verify the sub-communicator sums are internally consistent.
    let results = run_cluster_with_stacks(11, 1 << 20, |mut comm| {
        let mut current = comm.split(0);
        let mut level_sums = Vec::new();
        let world_rank = comm.rank() as f64;
        while current.size() > 1 {
            let mut v = vec![world_rank];
            current.allreduce_sum_f64(&mut v);
            level_sums.push(v[0]);
            let half = current.size() / 2;
            let color = u64::from(current.rank() >= half);
            current = current.split(color);
        }
        level_sums
    });
    // Level 0: all 11 ranks → sum of 0..=10 = 55 everywhere.
    for r in &results {
        assert_eq!(r[0], 55.0);
    }
    // Deeper sums must be partial sums consistent with a partition:
    // the level-1 sums across members add to 55 (each rank reports the
    // sum of its own half).
    let mut halves: Vec<f64> = results.iter().map(|r| r[1]).collect();
    halves.sort_by(|a, b| a.partial_cmp(b).unwrap());
    halves.dedup();
    assert_eq!(halves.iter().sum::<f64>(), 55.0);
}

#[test]
fn interleaved_tag_storm() {
    // Heavy out-of-order traffic: every rank sends to every other rank
    // on multiple tags, receives in a scrambled order.
    let n = 5usize;
    let results = run_cluster(n, |comm| {
        for dest in 0..n {
            if dest != comm.rank() {
                for tag in 0..4u64 {
                    comm.send(dest, tag, (comm.rank() as u64) * 10 + tag);
                }
            }
        }
        let mut total = 0u64;
        // Receive in reversed tag and rank order.
        for src in (0..n).rev() {
            if src != comm.rank() {
                for tag in (0..4u64).rev() {
                    let v: u64 = comm.recv(src, tag);
                    assert_eq!(v, (src as u64) * 10 + tag);
                    total += v;
                }
            }
        }
        total
    });
    assert_eq!(results.len(), n);
}

#[test]
fn broadcast_from_nonzero_root() {
    let results = run_cluster(7, |comm| {
        if comm.rank() == 5 {
            comm.broadcast(5, Some(String::from("galactos")))
        } else {
            comm.broadcast::<String>(5, None)
        }
    });
    assert!(results.iter().all(|s| s == "galactos"));
}

#[test]
fn gather_large_payload_traffic_counted() {
    let results = run_cluster(3, |comm| {
        let payload = vec![comm.rank() as f64; 10_000];
        let gathered = comm.gather(0, payload);
        comm.barrier();
        (
            gathered.map(|g| g.len()),
            comm.cluster_stats().total_bytes_sent(),
        )
    });
    assert_eq!(results[0].0, Some(3));
    assert!(results[1].0.is_none());
    // Two non-root ranks shipped 80 kB each.
    assert!(results[0].1 >= 160_000, "bytes {}", results[0].1);
}
