//! Deterministic fault injection for the cluster fabric.
//!
//! At the paper's scale — 9,636 KNL nodes held for the full 2-billion-
//! galaxy O(N²) run — rank failure is the expected case, not the
//! exception. This module gives the simulator a *failure model* that is
//! reproducible down to the bit: a [`FaultPlan`] names, ahead of time,
//! exactly which messages to drop/delay/corrupt and which ranks to kill
//! at which point, and a [`FaultHarness`] executes the plan with
//! deterministic counters. No randomness at runtime, no clocks: a plan
//! replayed against the same program produces the same failure at the
//! same operation.
//!
//! Two kinds of fault:
//!
//! * **Message faults** ([`MessageFault`]) select a message by any
//!   combination of communicator id, tag, source world rank, destination
//!   world rank, and *delivery index* (the nth message matching the
//!   other filters, counted in the receiving mailbox's drain order), and
//!   apply an action: drop it, delay it past the next `n` deliveries, or
//!   corrupt `Vec<f64>` payloads by XORing the bit pattern of every
//!   element. With source and tag pinned, the per-sender FIFO of the
//!   fabric makes the delivery index deterministic.
//! * **Kills** ([`KillSpec`]) terminate a chosen rank when it reaches a
//!   send count, a receive count, or a named *phase* (see
//!   [`Comm::set_phase`](crate::comm::Comm::set_phase)). A kill fires at
//!   most [`KillSpec::times`] times across the whole run — counters
//!   persist across supervised retries, so `times: 1` models a transient
//!   fault (the retry succeeds) and [`KillSpec::ALWAYS`] models a
//!   permanently dead node (retries exhaust and work is reassigned).
//!
//! A fired kill raises a panic with an [`InjectedKill`] payload;
//! [`run_cluster_supervised`](crate::comm::run_cluster_supervised)
//! converts it — and ordinary rank panics — into a structured
//! [`RankFailure`] instead of poisoning the whole run.

use parking_lot::Mutex;
use std::any::Any;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// What to do with a selected message.
#[derive(Clone, Debug)]
pub enum FaultAction {
    /// Never deliver the message (the bytes count as sent, never as
    /// received — exactly what a lost packet looks like to the stats).
    DropMessage,
    /// Hold the message back until `deliveries` further messages have
    /// been drained by the same mailbox (or the receiver would
    /// otherwise block, which force-releases the oldest delayed message
    /// to preserve liveness). Models reordering.
    Delay { deliveries: u64 },
    /// XOR `xor_bits` into the bit pattern of every element of a
    /// `Vec<f64>` payload. Payloads of any other type are delivered
    /// unchanged (the simulator moves typed values, not wire bytes, so
    /// corruption is only meaningful where a byte-level flip would
    /// land: the f64 arrays that carry multipole partials).
    CorruptF64 { xor_bits: u64 },
}

/// Which message a [`MessageFault`] applies to. `None` filters match
/// everything; `index` picks the nth (0-based) message matching the
/// other filters, counted in mailbox drain order.
#[derive(Clone, Debug, Default)]
pub struct MessageSelector {
    /// Communicator id (`0` is the world communicator).
    pub comm_id: Option<u64>,
    /// Message tag, as passed to `send` (internal collective traffic
    /// carries the top bit and can be matched by that raw value).
    pub tag: Option<u64>,
    /// Sending world rank.
    pub source: Option<usize>,
    /// Receiving world rank.
    pub dest: Option<usize>,
    /// The nth matching message (0-based).
    pub index: u64,
}

impl MessageSelector {
    fn matches(&self, comm_id: u64, tag: u64, source: usize, dest: usize) -> bool {
        self.comm_id.is_none_or(|c| c == comm_id)
            && self.tag.is_none_or(|t| t == tag)
            && self.source.is_none_or(|s| s == source)
            && self.dest.is_none_or(|d| d == dest)
    }
}

/// A message fault: selector plus action.
#[derive(Clone, Debug)]
pub struct MessageFault {
    pub selector: MessageSelector,
    pub action: FaultAction,
}

/// When a [`KillSpec`] fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KillPoint {
    /// The rank calls [`Comm::set_phase`](crate::comm::Comm::set_phase)
    /// (or the pipeline calls [`FaultHarness::enter_phase`]) with this
    /// phase name.
    AtPhase(String),
    /// The rank's cumulative send count reaches this value.
    AfterSends(u64),
    /// The rank's cumulative receive count reaches this value.
    AfterRecvs(u64),
}

/// Kill one rank at a chosen point, at most `times` times.
#[derive(Clone, Debug)]
pub struct KillSpec {
    /// World rank of the victim (the top-level cluster's numbering).
    pub rank: usize,
    pub point: KillPoint,
    /// How many times this kill may fire across the whole run,
    /// *including supervised retries*. `1` = transient fault;
    /// [`KillSpec::ALWAYS`] = permanently dead node.
    pub times: u32,
}

impl KillSpec {
    /// `times` value modelling a permanently dead rank.
    pub const ALWAYS: u32 = u32::MAX;
}

/// A complete, deterministic fault schedule.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    pub messages: Vec<MessageFault>,
    pub kills: Vec<KillSpec>,
}

/// SplitMix64 step — the seed mixer used for seeded plans (dependency-
/// free, same construction as `core::kernel::testutil`).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Add a kill of `rank` on entering `phase`, firing `times` times.
    pub fn with_phase_kill(mut self, rank: usize, phase: &str, times: u32) -> Self {
        self.kills.push(KillSpec {
            rank,
            point: KillPoint::AtPhase(phase.to_string()),
            times,
        });
        self
    }

    /// Add a kill of `rank` at its `n`th send, firing `times` times.
    pub fn with_send_kill(mut self, rank: usize, n: u64, times: u32) -> Self {
        self.kills.push(KillSpec {
            rank,
            point: KillPoint::AfterSends(n),
            times,
        });
        self
    }

    /// Add a kill of `rank` at its `n`th receive, firing `times` times.
    pub fn with_recv_kill(mut self, rank: usize, n: u64, times: u32) -> Self {
        self.kills.push(KillSpec {
            rank,
            point: KillPoint::AfterRecvs(n),
            times,
        });
        self
    }

    /// Add a message fault.
    pub fn with_message_fault(mut self, selector: MessageSelector, action: FaultAction) -> Self {
        self.messages.push(MessageFault { selector, action });
        self
    }

    /// A seeded one-kill plan: a SplitMix64 stream over `seed` picks the
    /// victim rank and the phase (from `phases`), so sweeps over seeds
    /// cover the failure space deterministically.
    pub fn seeded_kill(seed: u64, num_ranks: usize, phases: &[&str], times: u32) -> Self {
        assert!(num_ranks > 0 && !phases.is_empty());
        let mut s = seed;
        let rank = usize::try_from(splitmix64(&mut s) % num_ranks as u64).expect("rank fits");
        let phase = phases
            [usize::try_from(splitmix64(&mut s) % phases.len() as u64).expect("phase index fits")];
        FaultPlan::none().with_phase_kill(rank, phase, times)
    }
}

/// Panic payload of an injected kill; the supervisor downcasts it to
/// classify the failure cause.
#[derive(Clone, Copy, Debug)]
pub struct InjectedKill {
    /// World rank that was killed.
    pub rank: usize,
}

/// Why a rank failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureCause {
    /// A [`KillSpec`] fired.
    InjectedKill,
    /// The rank panicked on its own (message captured when the payload
    /// is a string, as `panic!` produces).
    Panic(String),
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureCause::InjectedKill => write!(f, "injected kill"),
            FailureCause::Panic(msg) => write!(f, "panic: {msg}"),
        }
    }
}

/// A structured rank failure: who died, during which phase, and why.
/// Produced by [`run_cluster_supervised`](crate::comm::run_cluster_supervised)
/// in place of a propagated panic.
#[derive(Clone, Debug)]
pub struct RankFailure {
    pub rank: usize,
    /// The last phase the rank entered via `set_phase`/`enter_phase`
    /// (empty if it never declared one).
    pub phase: String,
    pub cause: FailureCause,
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {} failed in phase '{}': {}",
            self.rank, self.phase, self.cause
        )
    }
}

/// Classify a caught panic payload into a [`FailureCause`].
pub fn classify_panic(payload: &(dyn Any + Send)) -> FailureCause {
    if payload.downcast_ref::<InjectedKill>().is_some() {
        FailureCause::InjectedKill
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        FailureCause::Panic((*s).to_string())
    } else if let Some(s) = payload.downcast_ref::<String>() {
        FailureCause::Panic(s.clone())
    } else {
        FailureCause::Panic("non-string panic payload".to_string())
    }
}

/// What the fabric should do with a drained message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DeliveryVerdict {
    Deliver,
    Drop,
    Delay(u64),
}

/// Executes a [`FaultPlan`] with deterministic counters. One harness
/// spans an entire supervised run — kill fire-counts persist across
/// retries, which is what lets `times` distinguish transient from
/// permanent faults. All ranks are *world* ranks of the top-level
/// cluster.
pub struct FaultHarness {
    plan: FaultPlan,
    /// Per message-fault: how many matching messages have been seen.
    msg_seen: Vec<AtomicU64>,
    /// Per kill spec: how many times it has fired.
    kill_fired: Vec<AtomicU32>,
    /// Per rank: cumulative send / recv operation counts.
    sends: Vec<AtomicU64>,
    recvs: Vec<AtomicU64>,
    /// Per rank: last phase entered.
    phases: Vec<Mutex<String>>,
}

impl FaultHarness {
    pub fn new(plan: FaultPlan, num_ranks: usize) -> Self {
        for k in &plan.kills {
            assert!(
                k.rank < num_ranks,
                "kill spec targets rank {} of {num_ranks}",
                k.rank
            );
        }
        let msg_seen = (0..plan.messages.len())
            .map(|_| AtomicU64::new(0))
            .collect();
        let kill_fired = (0..plan.kills.len()).map(|_| AtomicU32::new(0)).collect();
        FaultHarness {
            plan,
            msg_seen,
            kill_fired,
            sends: (0..num_ranks).map(|_| AtomicU64::new(0)).collect(),
            recvs: (0..num_ranks).map(|_| AtomicU64::new(0)).collect(),
            phases: (0..num_ranks).map(|_| Mutex::new(String::new())).collect(),
        }
    }

    /// A harness over the empty plan (pure supervision, no injection).
    pub fn unfaulted(num_ranks: usize) -> Self {
        FaultHarness::new(FaultPlan::none(), num_ranks)
    }

    pub fn num_ranks(&self) -> usize {
        self.sends.len()
    }

    /// The last phase `rank` entered (empty string if none).
    pub fn phase_of(&self, rank: usize) -> String {
        self.phases[rank].lock().clone()
    }

    /// Try to fire kill spec `i`; panics with [`InjectedKill`] when it
    /// still has firings left.
    fn fire(&self, i: usize, rank: usize) {
        let spec = &self.plan.kills[i];
        // Claim one firing slot atomically so concurrent checks (or
        // retries) never over-fire past `times`.
        let prev = self.kill_fired[i]
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < spec.times).then(|| n.saturating_add(1))
            })
            .ok();
        if prev.is_some() {
            std::panic::panic_any(InjectedKill { rank });
        }
    }

    /// Record that `rank` enters `phase`; fires matching phase kills.
    /// Usable with or without a live communicator — the supervised
    /// pipeline calls it directly when retrying a rank's work outside
    /// the fabric.
    pub fn enter_phase(&self, rank: usize, phase: &str) {
        *self.phases[rank].lock() = phase.to_string();
        for (i, spec) in self.plan.kills.iter().enumerate() {
            if spec.rank == rank {
                if let KillPoint::AtPhase(p) = &spec.point {
                    if p == phase {
                        self.fire(i, rank);
                    }
                }
            }
        }
    }

    /// Count a send by `rank`; fires matching send-count kills.
    pub(crate) fn note_send(&self, rank: usize) {
        let count = self.sends[rank].fetch_add(1, Ordering::Relaxed) + 1;
        for (i, spec) in self.plan.kills.iter().enumerate() {
            if spec.rank == rank && spec.point == KillPoint::AfterSends(count) {
                self.fire(i, rank);
            }
        }
    }

    /// Count a receive call by `rank`; fires matching recv-count kills.
    pub(crate) fn note_recv(&self, rank: usize) {
        let count = self.recvs[rank].fetch_add(1, Ordering::Relaxed) + 1;
        for (i, spec) in self.plan.kills.iter().enumerate() {
            if spec.rank == rank && spec.point == KillPoint::AfterRecvs(count) {
                self.fire(i, rank);
            }
        }
    }

    /// Decide the fate of a message drained by `dest`'s mailbox,
    /// mutating the payload in place for corruption faults. Called once
    /// per message (releases from the delay buffer bypass it).
    pub(crate) fn on_deliver(
        &self,
        comm_id: u64,
        tag: u64,
        source: usize,
        dest: usize,
        data: &mut Box<dyn Any + Send>,
    ) -> DeliveryVerdict {
        let mut verdict = DeliveryVerdict::Deliver;
        for (i, fault) in self.plan.messages.iter().enumerate() {
            if !fault.selector.matches(comm_id, tag, source, dest) {
                continue;
            }
            let idx = self.msg_seen[i].fetch_add(1, Ordering::Relaxed);
            if idx != fault.selector.index {
                continue;
            }
            match &fault.action {
                FaultAction::DropMessage => verdict = DeliveryVerdict::Drop,
                FaultAction::Delay { deliveries } => {
                    verdict = DeliveryVerdict::Delay(*deliveries);
                }
                FaultAction::CorruptF64 { xor_bits } => {
                    if let Some(vec) = data.downcast_mut::<Vec<f64>>() {
                        for v in vec.iter_mut() {
                            *v = f64::from_bits(v.to_bits() ^ xor_bits);
                        }
                    }
                }
            }
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_filters_compose() {
        let all = MessageSelector::default();
        assert!(all.matches(0, 7, 1, 2));
        let pinned = MessageSelector {
            comm_id: Some(0),
            tag: Some(7),
            source: Some(1),
            dest: Some(2),
            index: 0,
        };
        assert!(pinned.matches(0, 7, 1, 2));
        assert!(!pinned.matches(0, 8, 1, 2));
        assert!(!pinned.matches(0, 7, 0, 2));
        assert!(!pinned.matches(0, 7, 1, 3));
        assert!(!pinned.matches(1, 7, 1, 2));
    }

    #[test]
    fn kill_fires_exactly_times() {
        let plan = FaultPlan::none().with_phase_kill(1, "compute", 2);
        let h = FaultHarness::new(plan, 3);
        for attempt in 0..4 {
            let fired = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                h.enter_phase(1, "compute");
            }))
            .is_err();
            assert_eq!(fired, attempt < 2, "attempt {attempt}");
        }
        // A different rank or phase never fires.
        h.enter_phase(0, "compute");
        h.enter_phase(1, "reduce");
    }

    #[test]
    fn send_count_kill_is_cumulative_across_checks() {
        let plan = FaultPlan::none().with_send_kill(0, 3, 1);
        let h = FaultHarness::new(plan, 2);
        h.note_send(0);
        h.note_send(0);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            h.note_send(0);
        }))
        .is_err());
        // Fired once; the counter keeps advancing without re-firing.
        h.note_send(0);
        h.note_send(0);
    }

    #[test]
    fn seeded_kill_is_deterministic_and_in_range() {
        let a = FaultPlan::seeded_kill(42, 5, &["ingest", "compute", "reduce"], 1);
        let b = FaultPlan::seeded_kill(42, 5, &["ingest", "compute", "reduce"], 1);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.kills.len(), 1);
        assert!(a.kills[0].rank < 5);
        // Different seeds explore different cells.
        let c = FaultPlan::seeded_kill(43, 5, &["ingest", "compute", "reduce"], 1);
        let d = FaultPlan::seeded_kill(44, 5, &["ingest", "compute", "reduce"], 1);
        let cells: std::collections::HashSet<String> = [a, c, d]
            .iter()
            .map(|p| format!("{:?}", p.kills[0]))
            .collect();
        assert!(cells.len() >= 2);
    }

    #[test]
    fn corrupt_action_flips_f64_bits() {
        let plan = FaultPlan::none().with_message_fault(
            MessageSelector {
                tag: Some(9),
                ..Default::default()
            },
            FaultAction::CorruptF64 { xor_bits: 1 << 63 },
        );
        let h = FaultHarness::new(plan, 2);
        let mut data: Box<dyn Any + Send> = Box::new(vec![1.0f64, -2.0]);
        assert_eq!(
            h.on_deliver(0, 9, 0, 1, &mut data),
            DeliveryVerdict::Deliver
        );
        assert_eq!(
            data.downcast_ref::<Vec<f64>>().unwrap(),
            &vec![-1.0f64, 2.0]
        );
        // Index 1 of the same selector no longer matches (index 0 only).
        let mut again: Box<dyn Any + Send> = Box::new(vec![1.0f64]);
        h.on_deliver(0, 9, 0, 1, &mut again);
        assert_eq!(again.downcast_ref::<Vec<f64>>().unwrap(), &vec![1.0f64]);
    }

    #[test]
    fn classify_panics() {
        let kill: Box<dyn Any + Send> = Box::new(InjectedKill { rank: 3 });
        assert_eq!(classify_panic(kill.as_ref()), FailureCause::InjectedKill);
        let s: Box<dyn Any + Send> = Box::new("boom");
        assert_eq!(
            classify_panic(s.as_ref()),
            FailureCause::Panic("boom".to_string())
        );
        let owned: Box<dyn Any + Send> = Box::new("ouch".to_string());
        assert_eq!(
            classify_panic(owned.as_ref()),
            FailureCause::Panic("ouch".to_string())
        );
    }
}
