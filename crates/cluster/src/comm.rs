//! Ranks, communicators and collectives.
//!
//! Sends are asynchronous (unbounded channels), receives block with
//! `(source, tag)` matching, and communicators can be split into
//! sub-communicators — the operation at the heart of the paper's
//! recursive k-d partitioning, where "each level of the tree divides MPI
//! processes into sub-communicators of nearly equal size".
//!
//! Failure semantics: every rank announces its termination (clean return
//! or panic) to every mailbox, so a receive whose peer has already died
//! returns a [`RecvError`] naming the rank and tag instead of blocking
//! forever. [`run_cluster`] keeps the historical panic-propagation
//! behaviour; [`run_cluster_supervised`] instead converts each rank
//! panic — including kills injected by a
//! [`FaultHarness`] — into a structured
//! [`RankFailure`] so a driver can retry or reassign the lost work.

use crate::fault::{classify_panic, DeliveryVerdict, FaultHarness, RankFailure};
use crate::payload::Payload;
use crate::stats::{ClusterStats, TrafficStats};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Tag bit reserved for internal collective traffic; user tags must keep
/// it clear.
const INTERNAL_TAG: u64 = 1 << 63;

type MsgKey = (u64, u64, usize); // (comm id, tag, source world rank)

enum Envelope {
    Message {
        key: MsgKey,
        bytes: usize,
        data: Box<dyn Any + Send>,
    },
    /// Termination notice: `world_rank` has left the cluster, cleanly or
    /// not. Sent to every mailbox by the rank wrapper so blocked
    /// receivers wake up instead of hanging.
    Terminated { world_rank: usize, clean: bool },
}

/// A message delayed by a fault: delivered after `remaining` further
/// messages have been drained (or when the receiver would block).
struct Delayed {
    remaining: u64,
    key: MsgKey,
    bytes: usize,
    data: Box<dyn Any + Send>,
}

/// Per-world-rank mailbox: one channel receiver plus a buffer for
/// messages that arrived before they were asked for.
struct Mailbox {
    rx: Receiver<Envelope>,
    pending: Mutex<HashMap<MsgKey, VecDeque<Parcel>>>,
    /// World ranks known to have terminated (`true` = clean return).
    dead: Mutex<HashMap<usize, bool>>,
    /// Messages held back by a delay fault, in arrival order.
    delayed: Mutex<VecDeque<Delayed>>,
}

/// A buffered message: its wire size plus the boxed payload.
type Parcel = (usize, Box<dyn Any + Send>);

struct Fabric {
    senders: Vec<Sender<Envelope>>,
    mailboxes: Vec<Arc<Mailbox>>,
    stats: ClusterStats,
    /// Fault-injection harness; `None` outside supervised runs.
    harness: Option<Arc<FaultHarness>>,
}

/// Failure returned by [`Comm::recv_result`] when the message can never
/// arrive. Names the peer (local rank within the communicator) and tag
/// so a supervisor can tell *which* exchange died.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecvError {
    /// Local rank of the peer within the communicator.
    pub source: usize,
    /// World rank of the peer.
    pub source_world: usize,
    pub tag: u64,
    pub kind: RecvErrorKind,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvErrorKind {
    /// The peer panicked or was killed before sending a matching message.
    PeerFailed,
    /// The peer returned cleanly without sending a matching message.
    PeerFinished,
    /// The whole fabric shut down while this rank was still receiving.
    FabricClosed,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self.kind {
            RecvErrorKind::PeerFailed => "terminated abnormally (panicked or killed)",
            RecvErrorKind::PeerFinished => "finished without sending a matching message",
            RecvErrorKind::FabricClosed => "is unreachable: the cluster fabric closed",
        };
        write!(
            f,
            "recv(src rank {} [world {}], tag {}) cannot complete: peer {}",
            self.source, self.source_world, self.tag, what
        )
    }
}

impl std::error::Error for RecvError {}

/// A communicator: a view of a subset of world ranks, with local ranks
/// `0..size()` mapping onto world ranks through `group`.
pub struct Comm {
    fabric: Arc<Fabric>,
    /// `group[local rank] = world rank`; sorted construction keeps local
    /// order consistent with parent order.
    group: Arc<Vec<usize>>,
    my_local: usize,
    comm_id: u64,
    /// Number of `split` calls made on this communicator (kept identical
    /// across members because `split` is collective).
    split_counter: u64,
}

impl Comm {
    /// This rank's id within the communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.my_local
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// World rank of local rank `r`.
    #[inline]
    pub fn world_rank_of(&self, r: usize) -> usize {
        self.group[r]
    }

    /// This rank's traffic counters.
    pub fn traffic(&self) -> &Arc<TrafficStats> {
        self.fabric.stats.rank(self.group[self.my_local])
    }

    /// Cluster-wide traffic statistics (shared by all ranks).
    pub fn cluster_stats(&self) -> &ClusterStats {
        &self.fabric.stats
    }

    /// Declare that this rank enters `phase`. Purely observational
    /// outside supervised runs; under a
    /// [`FaultHarness`] it records the phase
    /// for [`RankFailure`] attribution and fires any phase kill aimed at
    /// this world rank.
    pub fn set_phase(&self, phase: &str) {
        if let Some(h) = &self.fabric.harness {
            h.enter_phase(self.group[self.my_local], phase);
        }
    }

    /// Asynchronously send `value` to local rank `dest` under `tag`.
    pub fn send<T: Payload>(&self, dest: usize, tag: u64, value: T) {
        assert!(
            tag & INTERNAL_TAG == 0,
            "user tags must not set the top bit"
        );
        self.send_raw(dest, tag, value);
    }

    fn send_raw<T: Payload>(&self, dest: usize, tag: u64, value: T) {
        assert!(
            dest < self.size(),
            "dest {dest} out of range 0..{}",
            self.size()
        );
        let bytes = value.wire_bytes();
        let src_world = self.group[self.my_local];
        let dest_world = self.group[dest];
        if let Some(h) = &self.fabric.harness {
            h.note_send(src_world);
        }
        self.fabric.stats.rank(src_world).record_send(bytes);
        self.fabric.senders[dest_world]
            .send(Envelope::Message {
                key: (self.comm_id, tag, src_world),
                bytes,
                data: Box::new(value),
            })
            .expect("rank mailbox closed — the cluster fabric shut down");
    }

    /// Block until a message from local rank `src` with `tag` arrives;
    /// panics if the payload type does not match `T` or if the peer
    /// terminated without sending (see [`Comm::recv_result`] for the
    /// non-panicking form).
    pub fn recv<T: Payload>(&self, src: usize, tag: u64) -> T {
        assert!(
            tag & INTERNAL_TAG == 0,
            "user tags must not set the top bit"
        );
        self.recv_raw(src, tag).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Block until a message from local rank `src` with `tag` arrives,
    /// or until that can provably never happen because the peer has
    /// terminated — the failure mode that used to hang forever.
    pub fn recv_result<T: Payload>(&self, src: usize, tag: u64) -> Result<T, RecvError> {
        assert!(
            tag & INTERNAL_TAG == 0,
            "user tags must not set the top bit"
        );
        self.recv_raw(src, tag)
    }

    fn recv_raw<T: Payload>(&self, src: usize, tag: u64) -> Result<T, RecvError> {
        assert!(
            src < self.size(),
            "src {src} out of range 0..{}",
            self.size()
        );
        let src_world = self.group[src];
        let my_world = self.group[self.my_local];
        if let Some(h) = &self.fabric.harness {
            h.note_recv(my_world);
        }
        let want: MsgKey = (self.comm_id, tag, src_world);
        let mailbox = &self.fabric.mailboxes[my_world];
        loop {
            // Drain everything immediately available, then consult the
            // buffers. Per-sender FIFO guarantees that a peer's
            // termination notice is drained only after all of its
            // messages, so "dead and not buffered" means "never coming".
            while let Some(env) = mailbox.rx.try_recv() {
                self.absorb(mailbox, my_world, env);
            }
            if let Some((bytes, data)) = Self::take_pending(mailbox, &want) {
                self.fabric.stats.rank(my_world).record_recv(bytes);
                return Ok(Self::downcast::<T>(data));
            }
            // Force-release delayed messages rather than block on a
            // channel that may never produce the ticks to free them.
            if Self::release_oldest_delayed(mailbox) {
                continue;
            }
            if let Some(&clean) = mailbox.dead.lock().get(&src_world) {
                return Err(RecvError {
                    source: src,
                    source_world: src_world,
                    tag,
                    kind: if clean {
                        RecvErrorKind::PeerFinished
                    } else {
                        RecvErrorKind::PeerFailed
                    },
                });
            }
            match mailbox.rx.recv() {
                Ok(env) => self.absorb(mailbox, my_world, env),
                Err(_) => {
                    return Err(RecvError {
                        source: src,
                        source_world: src_world,
                        tag,
                        kind: RecvErrorKind::FabricClosed,
                    })
                }
            }
        }
    }

    /// File one drained envelope: termination notices mark the peer
    /// dead; messages pass through the fault harness (drop / delay /
    /// corrupt) and land in the pending buffer. Each absorbed message
    /// also ages the delay buffer by one delivery.
    fn absorb(&self, mailbox: &Mailbox, my_world: usize, env: Envelope) {
        match env {
            Envelope::Terminated { world_rank, clean } => {
                mailbox.dead.lock().entry(world_rank).or_insert(clean);
            }
            Envelope::Message {
                key,
                bytes,
                mut data,
            } => {
                let verdict = match &self.fabric.harness {
                    Some(h) => h.on_deliver(key.0, key.1, key.2, my_world, &mut data),
                    None => DeliveryVerdict::Deliver,
                };
                match verdict {
                    DeliveryVerdict::Deliver => {
                        mailbox
                            .pending
                            .lock()
                            .entry(key)
                            .or_default()
                            .push_back((bytes, data));
                        Self::tick_delayed(mailbox);
                    }
                    DeliveryVerdict::Drop => {
                        Self::tick_delayed(mailbox);
                    }
                    DeliveryVerdict::Delay(deliveries) => {
                        mailbox.delayed.lock().push_back(Delayed {
                            remaining: deliveries,
                            key,
                            bytes,
                            data,
                        });
                    }
                }
            }
        }
    }

    /// Age every delayed message by one delivery; expired ones move to
    /// the pending buffer in arrival order.
    fn tick_delayed(mailbox: &Mailbox) {
        let mut delayed = mailbox.delayed.lock();
        if delayed.is_empty() {
            return;
        }
        let mut pending = mailbox.pending.lock();
        let mut still = VecDeque::with_capacity(delayed.len());
        while let Some(mut d) = delayed.pop_front() {
            d.remaining = d.remaining.saturating_sub(1);
            if d.remaining == 0 {
                pending
                    .entry(d.key)
                    .or_default()
                    .push_back((d.bytes, d.data));
            } else {
                still.push_back(d);
            }
        }
        *delayed = still;
    }

    /// Deliver the oldest delayed message immediately (liveness when the
    /// receiver would otherwise block). Returns whether one was moved.
    fn release_oldest_delayed(mailbox: &Mailbox) -> bool {
        let mut delayed = mailbox.delayed.lock();
        match delayed.pop_front() {
            Some(d) => {
                mailbox
                    .pending
                    .lock()
                    .entry(d.key)
                    .or_default()
                    .push_back((d.bytes, d.data));
                true
            }
            None => false,
        }
    }

    fn take_pending(mailbox: &Mailbox, want: &MsgKey) -> Option<Parcel> {
        let mut pending = mailbox.pending.lock();
        pending.get_mut(want).and_then(|queue| queue.pop_front())
    }

    fn downcast<T: 'static>(data: Box<dyn Any + Send>) -> T {
        *data
            .downcast::<T>()
            .expect("message payload type mismatch between send and recv")
    }

    /// Combined send+receive with the same peer (the halo-exchange
    /// communication shape). Safe against deadlock because sends are
    /// asynchronous.
    pub fn send_recv<T: Payload>(&self, peer: usize, tag: u64, value: T) -> T {
        self.send(peer, tag, value);
        self.recv(peer, tag)
    }

    /// Collective: split into sub-communicators by `color`. Every member
    /// of the communicator must call this the same number of times.
    /// Local ranks within each new communicator follow parent order.
    pub fn split(&mut self, color: u64) -> Comm {
        let gen = self.split_counter;
        self.split_counter += 1;

        // Gather colors at local root, which computes and distributes
        // the per-color member lists.
        let members: Vec<usize> = if self.my_local == 0 {
            let mut colors = vec![(0usize, color)];
            for r in 1..self.size() {
                let c: u64 = self.recv_internal(r, split_tag(gen));
                colors.push((r, c));
            }
            // Build per-color lists ordered by parent rank.
            let mut by_color: HashMap<u64, Vec<usize>> = HashMap::new();
            for &(r, c) in &colors {
                by_color.entry(c).or_default().push(r);
            }
            for &(r, c) in colors.iter().skip(1) {
                let list = by_color[&c].clone();
                self.send_internal(r, split_tag(gen), list);
                let _ = r;
            }
            by_color.remove(&color).expect("root color list")
        } else {
            self.send_internal(0, split_tag(gen), color);
            self.recv_internal::<Vec<usize>>(0, split_tag(gen))
        };

        let my_new_local = members
            .iter()
            .position(|&r| r == self.my_local)
            .expect("rank missing from its own color group");
        let group: Vec<usize> = members.iter().map(|&r| self.group[r]).collect();

        // All members derive the same child id locally.
        let mut h = DefaultHasher::new();
        (self.comm_id, gen, color).hash(&mut h);
        let comm_id = h.finish() | 1; // never collide with the world id 0

        Comm {
            fabric: Arc::clone(&self.fabric),
            group: Arc::new(group),
            my_local: my_new_local,
            comm_id,
            split_counter: 0,
        }
    }

    fn send_internal<T: Payload>(&self, dest: usize, tag: u64, value: T) {
        self.send_raw(dest, tag | INTERNAL_TAG, value);
    }

    fn recv_internal<T: Payload>(&self, src: usize, tag: u64) -> T {
        self.recv_raw(src, tag | INTERNAL_TAG)
            .unwrap_or_else(|e| panic!("collective cannot complete: {e}"))
    }

    /// Collective: block until every rank of the communicator arrives.
    pub fn barrier(&self) {
        if self.my_local == 0 {
            for r in 1..self.size() {
                let _: () = self.recv_internal(r, BARRIER_TAG);
            }
            for r in 1..self.size() {
                self.send_internal(r, BARRIER_TAG, ());
            }
        } else {
            self.send_internal(0, BARRIER_TAG, ());
            let _: () = self.recv_internal(0, BARRIER_TAG);
        }
    }

    /// Collective: root's value is distributed to every rank.
    pub fn broadcast<T: Payload + Clone>(&self, root: usize, value: Option<T>) -> T {
        if self.my_local == root {
            let v = value.expect("root must provide the broadcast value");
            for r in 0..self.size() {
                if r != root {
                    self.send_internal(r, BCAST_TAG, v.clone());
                }
            }
            v
        } else {
            self.recv_internal(root, BCAST_TAG)
        }
    }

    /// Collective: root receives every rank's value, ordered by rank.
    pub fn gather<T: Payload>(&self, root: usize, value: T) -> Option<Vec<T>> {
        if self.my_local == root {
            let mut out: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            out[root] = Some(value);
            for (r, slot) in out.iter_mut().enumerate() {
                if r != root {
                    *slot = Some(self.recv_internal(r, GATHER_TAG));
                }
            }
            Some(out.into_iter().map(|v| v.unwrap()).collect())
        } else {
            self.send_internal(root, GATHER_TAG, value);
            None
        }
    }

    /// Collective: element-wise sum of `data` across ranks, result on
    /// every rank (the final multipole reduction of Algorithm 1).
    pub fn allreduce_sum_f64(&self, data: &mut Vec<f64>) {
        let gathered = self.gather(0, std::mem::take(data));
        if self.my_local == 0 {
            let parts = gathered.unwrap();
            let len = parts[0].len();
            let mut acc = vec![0.0f64; len];
            for part in &parts {
                assert_eq!(part.len(), len, "allreduce length mismatch");
                for (a, v) in acc.iter_mut().zip(part.iter()) {
                    *a += v;
                }
            }
            *data = self.broadcast(0, Some(acc));
        } else {
            *data = self.broadcast::<Vec<f64>>(0, None);
        }
    }

    /// Collective: sum reduced to root only.
    pub fn reduce_sum_f64(&self, root: usize, data: Vec<f64>) -> Option<Vec<f64>> {
        let gathered = self.gather(root, data);
        gathered.map(|parts| {
            let len = parts[0].len();
            let mut acc = vec![0.0f64; len];
            for part in &parts {
                assert_eq!(part.len(), len, "reduce length mismatch");
                for (a, v) in acc.iter_mut().zip(part.iter()) {
                    *a += v;
                }
            }
            acc
        })
    }
}

fn split_tag(generation: u64) -> u64 {
    SPLIT_TAG_BASE + generation
}

const BARRIER_TAG: u64 = 1;
const BCAST_TAG: u64 = 2;
const GATHER_TAG: u64 = 3;
const SPLIT_TAG_BASE: u64 = 1000;

/// Run `f` on `num_ranks` concurrent ranks; returns each rank's result,
/// ordered by rank. Panics in any rank propagate.
pub fn run_cluster<T, F>(num_ranks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Comm) -> T + Send + Sync,
{
    run_cluster_with_stacks(num_ranks, 4 << 20, f)
}

/// [`run_cluster`] with an explicit per-rank stack size (large rank
/// counts want small stacks).
pub fn run_cluster_with_stacks<T, F>(num_ranks: usize, stack_bytes: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Comm) -> T + Send + Sync,
{
    run_cluster_inner(num_ranks, stack_bytes, None, f)
        .into_iter()
        .enumerate()
        .map(|(rank, r)| r.unwrap_or_else(|_| panic!("rank {rank} panicked")))
        .collect()
}

/// Run `f` on `num_ranks` ranks under a fault harness, converting each
/// rank's panic (organic or injected) into a [`RankFailure`] instead of
/// propagating it. Surviving ranks keep running: a receive aimed at a
/// dead peer fails with [`RecvError`] rather than hanging, so failures
/// cascade *visibly* through collectives and the supervisor gets one
/// `Result` per rank.
pub fn run_cluster_supervised<T, F>(
    num_ranks: usize,
    harness: Arc<FaultHarness>,
    f: F,
) -> Vec<Result<T, RankFailure>>
where
    T: Send,
    F: Fn(Comm) -> T + Send + Sync,
{
    assert!(
        harness.num_ranks() >= num_ranks,
        "harness sized for {} ranks, cluster has {num_ranks}",
        harness.num_ranks()
    );
    run_cluster_inner(num_ranks, 4 << 20, Some(harness), f)
}

fn run_cluster_inner<T, F>(
    num_ranks: usize,
    stack_bytes: usize,
    harness: Option<Arc<FaultHarness>>,
    f: F,
) -> Vec<Result<T, RankFailure>>
where
    T: Send,
    F: Fn(Comm) -> T + Send + Sync,
{
    assert!(num_ranks > 0, "need at least one rank");
    let mut senders = Vec::with_capacity(num_ranks);
    let mut mailboxes = Vec::with_capacity(num_ranks);
    for _ in 0..num_ranks {
        let (tx, rx) = unbounded();
        senders.push(tx);
        mailboxes.push(Arc::new(Mailbox {
            rx,
            pending: Mutex::new(HashMap::new()),
            dead: Mutex::new(HashMap::new()),
            delayed: Mutex::new(VecDeque::new()),
        }));
    }
    let fabric = Arc::new(Fabric {
        senders,
        mailboxes,
        stats: ClusterStats::new(num_ranks),
        harness: harness.clone(),
    });
    let world: Arc<Vec<usize>> = Arc::new((0..num_ranks).collect());

    let mut results: Vec<Option<Result<T, RankFailure>>> = (0..num_ranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_ranks);
        for rank in 0..num_ranks {
            let comm = Comm {
                fabric: Arc::clone(&fabric),
                group: Arc::clone(&world),
                my_local: rank,
                comm_id: 0,
                split_counter: 0,
            };
            let f = &f;
            let fabric = Arc::clone(&fabric);
            let handle = std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .stack_size(stack_bytes)
                .spawn_scoped(scope, move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(comm)));
                    // Announce termination to every mailbox (self
                    // included) so blocked peers wake up. Notices bypass
                    // traffic stats: they model the runtime noticing a
                    // death, not application traffic.
                    let clean = result.is_ok();
                    for dest in 0..num_ranks {
                        let _ = fabric.senders[dest].send(Envelope::Terminated {
                            world_rank: rank,
                            clean,
                        });
                    }
                    result
                })
                .expect("failed to spawn rank thread");
            handles.push(handle);
        }
        for (rank, handle) in handles.into_iter().enumerate() {
            let outcome = handle
                .join()
                .expect("rank wrapper never panics: the body is caught");
            results[rank] = Some(outcome.map_err(|payload| {
                RankFailure {
                    rank,
                    phase: harness
                        .as_ref()
                        .map(|h| h.phase_of(rank))
                        .unwrap_or_default(),
                    cause: classify_panic(payload.as_ref()),
                }
            }));
        }
    });
    results.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FailureCause, FaultAction, FaultPlan, KillSpec, MessageSelector};

    #[test]
    fn ping_pong() {
        let results = run_cluster(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, 42u64);
                comm.recv::<u64>(1, 8)
            } else {
                let v = comm.recv::<u64>(0, 7);
                comm.send(0, 8, v * 2);
                v
            }
        });
        assert_eq!(results, vec![84, 42]);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let results = run_cluster(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, 10u64);
                comm.send(1, 2, 20u64);
                comm.send(1, 3, 30u64);
                0
            } else {
                // Receive in reverse order of sending.
                let c = comm.recv::<u64>(0, 3);
                let b = comm.recv::<u64>(0, 2);
                let a = comm.recv::<u64>(0, 1);
                a + b * 100 + c * 10_000
            }
        });
        assert_eq!(results[1], 10 + 2000 + 300_000);
    }

    #[test]
    fn send_recv_is_deadlock_free() {
        let results = run_cluster(2, |comm| {
            let peer = 1 - comm.rank();
            comm.send_recv(peer, 5, comm.rank() as u64)
        });
        assert_eq!(results, vec![1, 0]);
    }

    #[test]
    fn barrier_and_broadcast() {
        let results = run_cluster(5, |comm| {
            comm.barrier();
            let v = if comm.rank() == 2 {
                comm.broadcast(2, Some(vec![1.0f64, 2.0, 3.0]))
            } else {
                comm.broadcast::<Vec<f64>>(2, None)
            };
            comm.barrier();
            v[2]
        });
        assert_eq!(results, vec![3.0; 5]);
    }

    #[test]
    fn gather_ordered_by_rank() {
        let results = run_cluster(4, |comm| comm.gather(0, comm.rank() as u64 * 10));
        assert_eq!(results[0], Some(vec![0, 10, 20, 30]));
        assert_eq!(results[1], None);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let results = run_cluster(3, |comm| {
            let mut data = vec![comm.rank() as f64, 1.0];
            comm.allreduce_sum_f64(&mut data);
            data
        });
        for r in results {
            assert_eq!(r, vec![3.0, 3.0]);
        }
    }

    #[test]
    fn split_into_halves() {
        let results = run_cluster(5, |mut comm| {
            // 0,1 -> color 0; 2,3,4 -> color 1 (non-power-of-two split)
            let color = u64::from(comm.rank() >= 2);
            let sub = comm.split(color);
            // Sum ranks within each sub-communicator.
            let mut v = vec![comm.rank() as f64];
            sub.allreduce_sum_f64(&mut v);
            (sub.rank(), sub.size(), v[0])
        });
        assert_eq!(results[0], (0, 2, 1.0)); // 0+1
        assert_eq!(results[1], (1, 2, 1.0));
        assert_eq!(results[2], (0, 3, 9.0)); // 2+3+4
        assert_eq!(results[3], (1, 3, 9.0));
        assert_eq!(results[4], (2, 3, 9.0));
    }

    #[test]
    fn recursive_split_matches_kd_pattern() {
        // Split 6 ranks 3 levels deep like the domain decomposition does.
        let results = run_cluster(6, |mut comm| {
            let mut path = Vec::new();
            let mut current = comm.split(0); // trivial split to exercise nesting
            let _ = &mut comm;
            while current.size() > 1 {
                let half = current.size() / 2;
                let color = u64::from(current.rank() >= half);
                path.push(color);
                current = current.split(color);
            }
            assert_eq!(current.size(), 1);
            path
        });
        // All leaf paths must be distinct.
        let mut seen = std::collections::HashSet::new();
        for p in results {
            assert!(seen.insert(p.clone()), "duplicate leaf path {p:?}");
        }
    }

    #[test]
    fn traffic_accounting() {
        let results = run_cluster(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 9, vec![0.0f64; 1000]);
            } else {
                let _ = comm.recv::<Vec<f64>>(0, 9);
            }
            comm.barrier();
            comm.cluster_stats().total_bytes_sent()
        });
        // 8008 payload bytes plus small barrier messages.
        assert!(results[0] >= 8008, "bytes {}", results[0]);
        assert_eq!(results[0], results[1]);
    }

    #[test]
    #[should_panic(expected = "rank 1 panicked")]
    fn type_mismatch_panics() {
        run_cluster(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, 1.0f64);
            } else {
                let _ = comm.recv::<u64>(0, 1);
            }
        });
    }

    #[test]
    fn many_ranks_with_small_stacks() {
        let results = run_cluster_with_stacks(64, 256 << 10, |comm| {
            let mut v = vec![1.0f64];
            comm.allreduce_sum_f64(&mut v);
            v[0] as usize
        });
        assert!(results.iter().all(|&r| r == 64));
    }

    // ---- fault injection and supervision ----

    fn harness(plan: FaultPlan, num_ranks: usize) -> Arc<FaultHarness> {
        Arc::new(FaultHarness::new(plan, num_ranks))
    }

    #[test]
    fn recv_from_panicked_peer_errors_instead_of_hanging() {
        let results = run_cluster_supervised(2, harness(FaultPlan::none(), 2), |comm| {
            if comm.rank() == 1 {
                panic!("simulated node failure");
            }
            // Without termination notices this would block forever.
            let err = comm.recv_result::<u64>(1, 42).unwrap_err();
            assert_eq!(err.source, 1);
            assert_eq!(err.tag, 42);
            assert_eq!(err.kind, RecvErrorKind::PeerFailed);
            let msg = err.to_string();
            assert!(msg.contains("rank 1"), "message names the rank: {msg}");
            assert!(msg.contains("tag 42"), "message names the tag: {msg}");
            err.source
        });
        assert!(results[0].is_ok());
        let failure = results[1].as_ref().unwrap_err();
        assert_eq!(failure.rank, 1);
        assert_eq!(
            failure.cause,
            FailureCause::Panic("simulated node failure".to_string())
        );
    }

    #[test]
    fn recv_from_cleanly_finished_peer_errors() {
        let results = run_cluster_supervised(2, harness(FaultPlan::none(), 2), |comm| {
            if comm.rank() == 1 {
                return 0;
            }
            let err = comm.recv_result::<u64>(1, 7).unwrap_err();
            assert_eq!(err.kind, RecvErrorKind::PeerFinished);
            1
        });
        assert!(results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn messages_sent_before_death_are_still_received() {
        // Per-sender FIFO: the termination notice trails the payload.
        let results = run_cluster_supervised(2, harness(FaultPlan::none(), 2), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, 99u64);
                panic!("dies after sending");
            }
            comm.recv_result::<u64>(0, 3).unwrap()
        });
        assert_eq!(*results[1].as_ref().unwrap(), 99);
    }

    #[test]
    fn injected_kill_reports_phase_and_cause() {
        let plan = FaultPlan::none().with_phase_kill(1, "compute", 1);
        let results = run_cluster_supervised(3, harness(plan, 3), |comm| {
            comm.set_phase("ingest");
            comm.set_phase("compute");
            comm.rank()
        });
        assert!(results[0].is_ok() && results[2].is_ok());
        let failure = results[1].as_ref().unwrap_err();
        assert_eq!(failure.rank, 1);
        assert_eq!(failure.phase, "compute");
        assert_eq!(failure.cause, FailureCause::InjectedKill);
    }

    #[test]
    fn kill_after_n_sends_fires_mid_stream() {
        let plan = FaultPlan::none().with_send_kill(0, 2, 1);
        let results = run_cluster_supervised(2, harness(plan, 2), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, 10u64);
                comm.send(1, 1, 20u64); // killed here, before delivery
                comm.send(1, 1, 30u64);
                return 0;
            }
            let first = comm.recv_result::<u64>(0, 1).unwrap();
            let rest = comm.recv_result::<u64>(0, 1);
            assert_eq!(first, 10);
            assert!(rest.is_err(), "second message was never sent");
            1
        });
        assert!(results[0].is_err());
        assert!(results[1].is_ok());
    }

    #[test]
    fn drop_fault_loses_exactly_the_selected_message() {
        let plan = FaultPlan::none().with_message_fault(
            MessageSelector {
                tag: Some(5),
                source: Some(0),
                dest: Some(1),
                index: 0,
                comm_id: Some(0),
            },
            FaultAction::DropMessage,
        );
        let results = run_cluster_supervised(2, harness(plan, 2), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, 111u64);
                comm.send(1, 5, 222u64);
                return 0;
            }
            comm.recv_result::<u64>(0, 5).unwrap()
        });
        // The first tag-5 message is dropped; the receiver sees the second.
        assert_eq!(*results[1].as_ref().unwrap(), 222);
    }

    #[test]
    fn delay_fault_reorders_same_tag_messages() {
        let plan = FaultPlan::none().with_message_fault(
            MessageSelector {
                tag: Some(6),
                source: Some(0),
                index: 0,
                ..Default::default()
            },
            FaultAction::Delay { deliveries: 1 },
        );
        let results = run_cluster_supervised(2, harness(plan, 2), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 6, 1u64);
                comm.send(1, 6, 2u64);
                return 0;
            }
            let a = comm.recv_result::<u64>(0, 6).unwrap();
            let b = comm.recv_result::<u64>(0, 6).unwrap();
            a * 10 + b
        });
        // Message 1 is delayed past message 2: arrival order is 2, 1.
        assert_eq!(*results[1].as_ref().unwrap(), 21);
    }

    #[test]
    fn corrupt_fault_flips_payload_bits_deterministically() {
        let plan = FaultPlan::none().with_message_fault(
            MessageSelector {
                tag: Some(4),
                source: Some(0),
                index: 0,
                ..Default::default()
            },
            FaultAction::CorruptF64 { xor_bits: 1 << 63 },
        );
        let results = run_cluster_supervised(2, harness(plan, 2), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 4, vec![1.5f64, -2.5]);
                return vec![];
            }
            comm.recv_result::<Vec<f64>>(0, 4).unwrap()
        });
        assert_eq!(*results[1].as_ref().unwrap(), vec![-1.5, 2.5]);
    }

    #[test]
    fn collective_with_dead_rank_fails_structurally_not_by_hanging() {
        let plan = FaultPlan::none().with_phase_kill(2, "pre-barrier", 1);
        let results = run_cluster_supervised(3, harness(plan, 3), |comm| {
            comm.set_phase("pre-barrier");
            comm.barrier();
            comm.rank()
        });
        // Rank 2 dies; the barrier cannot complete, so every rank
        // resolves to a failure instead of deadlocking the process.
        assert!(results[2].is_err());
        assert!(results.iter().any(|r| r.is_err()));
    }

    #[test]
    fn transient_kill_fires_once_across_supervised_rounds() {
        let plan = FaultPlan::none().with_phase_kill(0, "work", 1);
        let h = harness(plan, 2);
        let first = run_cluster_supervised(2, Arc::clone(&h), |comm| {
            comm.set_phase("work");
            comm.rank()
        });
        assert!(first[0].is_err());
        assert!(first[1].is_ok());
        // Same harness, second round: the kill budget is spent.
        let second = run_cluster_supervised(2, Arc::clone(&h), |comm| {
            comm.set_phase("work");
            comm.rank()
        });
        assert!(second[0].is_ok());
    }

    #[test]
    fn permanent_kill_fires_every_round() {
        let plan = FaultPlan {
            kills: vec![KillSpec {
                rank: 1,
                point: crate::fault::KillPoint::AtPhase("work".to_string()),
                times: KillSpec::ALWAYS,
            }],
            messages: vec![],
        };
        let h = harness(plan, 2);
        for _ in 0..3 {
            let round = run_cluster_supervised(2, Arc::clone(&h), |comm| {
                comm.set_phase("work");
                comm.rank()
            });
            assert!(round[1].is_err());
        }
    }
}
