//! Ranks, communicators and collectives.
//!
//! Sends are asynchronous (unbounded channels), receives block with
//! `(source, tag)` matching, and communicators can be split into
//! sub-communicators — the operation at the heart of the paper's
//! recursive k-d partitioning, where "each level of the tree divides MPI
//! processes into sub-communicators of nearly equal size".

use crate::payload::Payload;
use crate::stats::{ClusterStats, TrafficStats};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::any::Any;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Tag bit reserved for internal collective traffic; user tags must keep
/// it clear.
const INTERNAL_TAG: u64 = 1 << 63;

type MsgKey = (u64, u64, usize); // (comm id, tag, source world rank)

struct Envelope {
    key: MsgKey,
    bytes: usize,
    data: Box<dyn Any + Send>,
}

/// Per-world-rank mailbox: one channel receiver plus a buffer for
/// messages that arrived before they were asked for.
struct Mailbox {
    rx: Receiver<Envelope>,
    pending: Mutex<HashMap<MsgKey, VecDeque<Parcel>>>,
}

/// A buffered message: its wire size plus the boxed payload.
type Parcel = (usize, Box<dyn Any + Send>);

struct Fabric {
    senders: Vec<Sender<Envelope>>,
    mailboxes: Vec<Arc<Mailbox>>,
    stats: ClusterStats,
}

/// A communicator: a view of a subset of world ranks, with local ranks
/// `0..size()` mapping onto world ranks through `group`.
pub struct Comm {
    fabric: Arc<Fabric>,
    /// `group[local rank] = world rank`; sorted construction keeps local
    /// order consistent with parent order.
    group: Arc<Vec<usize>>,
    my_local: usize,
    comm_id: u64,
    /// Number of `split` calls made on this communicator (kept identical
    /// across members because `split` is collective).
    split_counter: u64,
}

impl Comm {
    /// This rank's id within the communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.my_local
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// World rank of local rank `r`.
    #[inline]
    pub fn world_rank_of(&self, r: usize) -> usize {
        self.group[r]
    }

    /// This rank's traffic counters.
    pub fn traffic(&self) -> &Arc<TrafficStats> {
        self.fabric.stats.rank(self.group[self.my_local])
    }

    /// Cluster-wide traffic statistics (shared by all ranks).
    pub fn cluster_stats(&self) -> &ClusterStats {
        &self.fabric.stats
    }

    /// Asynchronously send `value` to local rank `dest` under `tag`.
    pub fn send<T: Payload>(&self, dest: usize, tag: u64, value: T) {
        assert!(
            tag & INTERNAL_TAG == 0,
            "user tags must not set the top bit"
        );
        self.send_raw(dest, tag, value);
    }

    fn send_raw<T: Payload>(&self, dest: usize, tag: u64, value: T) {
        assert!(
            dest < self.size(),
            "dest {dest} out of range 0..{}",
            self.size()
        );
        let bytes = value.wire_bytes();
        let src_world = self.group[self.my_local];
        let dest_world = self.group[dest];
        self.fabric.stats.rank(src_world).record_send(bytes);
        self.fabric.senders[dest_world]
            .send(Envelope {
                key: (self.comm_id, tag, src_world),
                bytes,
                data: Box::new(value),
            })
            .expect("rank mailbox closed — a peer thread panicked");
    }

    /// Block until a message from local rank `src` with `tag` arrives;
    /// panics if the payload type does not match `T`.
    pub fn recv<T: Payload>(&self, src: usize, tag: u64) -> T {
        assert!(
            tag & INTERNAL_TAG == 0,
            "user tags must not set the top bit"
        );
        self.recv_raw(src, tag)
    }

    fn recv_raw<T: Payload>(&self, src: usize, tag: u64) -> T {
        assert!(
            src < self.size(),
            "src {src} out of range 0..{}",
            self.size()
        );
        let src_world = self.group[src];
        let my_world = self.group[self.my_local];
        let want: MsgKey = (self.comm_id, tag, src_world);
        let mailbox = &self.fabric.mailboxes[my_world];
        // Fast path: already buffered.
        {
            let mut pending = mailbox.pending.lock();
            if let Some(queue) = pending.get_mut(&want) {
                if let Some((bytes, data)) = queue.pop_front() {
                    self.fabric.stats.rank(my_world).record_recv(bytes);
                    return Self::downcast::<T>(data);
                }
            }
        }
        // Slow path: drain the channel until the wanted message appears.
        loop {
            let env = mailbox
                .rx
                .recv()
                .expect("cluster fabric closed while receiving");
            if env.key == want {
                self.fabric.stats.rank(my_world).record_recv(env.bytes);
                return Self::downcast::<T>(env.data);
            }
            mailbox
                .pending
                .lock()
                .entry(env.key)
                .or_default()
                .push_back((env.bytes, env.data));
        }
    }

    fn downcast<T: 'static>(data: Box<dyn Any + Send>) -> T {
        *data
            .downcast::<T>()
            .expect("message payload type mismatch between send and recv")
    }

    /// Combined send+receive with the same peer (the halo-exchange
    /// communication shape). Safe against deadlock because sends are
    /// asynchronous.
    pub fn send_recv<T: Payload>(&self, peer: usize, tag: u64, value: T) -> T {
        self.send(peer, tag, value);
        self.recv(peer, tag)
    }

    /// Collective: split into sub-communicators by `color`. Every member
    /// of the communicator must call this the same number of times.
    /// Local ranks within each new communicator follow parent order.
    pub fn split(&mut self, color: u64) -> Comm {
        let gen = self.split_counter;
        self.split_counter += 1;

        // Gather colors at local root, which computes and distributes
        // the per-color member lists.
        let members: Vec<usize> = if self.my_local == 0 {
            let mut colors = vec![(0usize, color)];
            for r in 1..self.size() {
                let c: u64 = self.recv_internal(r, split_tag(gen));
                colors.push((r, c));
            }
            // Build per-color lists ordered by parent rank.
            let mut by_color: HashMap<u64, Vec<usize>> = HashMap::new();
            for &(r, c) in &colors {
                by_color.entry(c).or_default().push(r);
            }
            for &(r, c) in colors.iter().skip(1) {
                let list = by_color[&c].clone();
                self.send_internal(r, split_tag(gen), list);
                let _ = r;
            }
            by_color.remove(&color).expect("root color list")
        } else {
            self.send_internal(0, split_tag(gen), color);
            self.recv_internal::<Vec<usize>>(0, split_tag(gen))
        };

        let my_new_local = members
            .iter()
            .position(|&r| r == self.my_local)
            .expect("rank missing from its own color group");
        let group: Vec<usize> = members.iter().map(|&r| self.group[r]).collect();

        // All members derive the same child id locally.
        let mut h = DefaultHasher::new();
        (self.comm_id, gen, color).hash(&mut h);
        let comm_id = h.finish() | 1; // never collide with the world id 0

        Comm {
            fabric: Arc::clone(&self.fabric),
            group: Arc::new(group),
            my_local: my_new_local,
            comm_id,
            split_counter: 0,
        }
    }

    fn send_internal<T: Payload>(&self, dest: usize, tag: u64, value: T) {
        self.send_raw(dest, tag | INTERNAL_TAG, value);
    }

    fn recv_internal<T: Payload>(&self, src: usize, tag: u64) -> T {
        self.recv_raw(src, tag | INTERNAL_TAG)
    }

    /// Collective: block until every rank of the communicator arrives.
    pub fn barrier(&self) {
        if self.my_local == 0 {
            for r in 1..self.size() {
                let _: () = self.recv_internal(r, BARRIER_TAG);
            }
            for r in 1..self.size() {
                self.send_internal(r, BARRIER_TAG, ());
            }
        } else {
            self.send_internal(0, BARRIER_TAG, ());
            let _: () = self.recv_internal(0, BARRIER_TAG);
        }
    }

    /// Collective: root's value is distributed to every rank.
    pub fn broadcast<T: Payload + Clone>(&self, root: usize, value: Option<T>) -> T {
        if self.my_local == root {
            let v = value.expect("root must provide the broadcast value");
            for r in 0..self.size() {
                if r != root {
                    self.send_internal(r, BCAST_TAG, v.clone());
                }
            }
            v
        } else {
            self.recv_internal(root, BCAST_TAG)
        }
    }

    /// Collective: root receives every rank's value, ordered by rank.
    pub fn gather<T: Payload>(&self, root: usize, value: T) -> Option<Vec<T>> {
        if self.my_local == root {
            let mut out: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
            out[root] = Some(value);
            for (r, slot) in out.iter_mut().enumerate() {
                if r != root {
                    *slot = Some(self.recv_internal(r, GATHER_TAG));
                }
            }
            Some(out.into_iter().map(|v| v.unwrap()).collect())
        } else {
            self.send_internal(root, GATHER_TAG, value);
            None
        }
    }

    /// Collective: element-wise sum of `data` across ranks, result on
    /// every rank (the final multipole reduction of Algorithm 1).
    pub fn allreduce_sum_f64(&self, data: &mut Vec<f64>) {
        let gathered = self.gather(0, std::mem::take(data));
        if self.my_local == 0 {
            let parts = gathered.unwrap();
            let len = parts[0].len();
            let mut acc = vec![0.0f64; len];
            for part in &parts {
                assert_eq!(part.len(), len, "allreduce length mismatch");
                for (a, v) in acc.iter_mut().zip(part.iter()) {
                    *a += v;
                }
            }
            *data = self.broadcast(0, Some(acc));
        } else {
            *data = self.broadcast::<Vec<f64>>(0, None);
        }
    }

    /// Collective: sum reduced to root only.
    pub fn reduce_sum_f64(&self, root: usize, data: Vec<f64>) -> Option<Vec<f64>> {
        let gathered = self.gather(root, data);
        gathered.map(|parts| {
            let len = parts[0].len();
            let mut acc = vec![0.0f64; len];
            for part in &parts {
                assert_eq!(part.len(), len, "reduce length mismatch");
                for (a, v) in acc.iter_mut().zip(part.iter()) {
                    *a += v;
                }
            }
            acc
        })
    }
}

fn split_tag(generation: u64) -> u64 {
    SPLIT_TAG_BASE + generation
}

const BARRIER_TAG: u64 = 1;
const BCAST_TAG: u64 = 2;
const GATHER_TAG: u64 = 3;
const SPLIT_TAG_BASE: u64 = 1000;

/// Run `f` on `num_ranks` concurrent ranks; returns each rank's result,
/// ordered by rank. Panics in any rank propagate.
pub fn run_cluster<T, F>(num_ranks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Comm) -> T + Send + Sync,
{
    run_cluster_with_stacks(num_ranks, 4 << 20, f)
}

/// [`run_cluster`] with an explicit per-rank stack size (large rank
/// counts want small stacks).
pub fn run_cluster_with_stacks<T, F>(num_ranks: usize, stack_bytes: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Comm) -> T + Send + Sync,
{
    assert!(num_ranks > 0, "need at least one rank");
    let mut senders = Vec::with_capacity(num_ranks);
    let mut mailboxes = Vec::with_capacity(num_ranks);
    for _ in 0..num_ranks {
        let (tx, rx) = unbounded();
        senders.push(tx);
        mailboxes.push(Arc::new(Mailbox {
            rx,
            pending: Mutex::new(HashMap::new()),
        }));
    }
    let fabric = Arc::new(Fabric {
        senders,
        mailboxes,
        stats: ClusterStats::new(num_ranks),
    });
    let world: Arc<Vec<usize>> = Arc::new((0..num_ranks).collect());

    let mut results: Vec<Option<T>> = (0..num_ranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_ranks);
        for rank in 0..num_ranks {
            let comm = Comm {
                fabric: Arc::clone(&fabric),
                group: Arc::clone(&world),
                my_local: rank,
                comm_id: 0,
                split_counter: 0,
            };
            let f = &f;
            let handle = std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .stack_size(stack_bytes)
                .spawn_scoped(scope, move || f(comm))
                .expect("failed to spawn rank thread");
            handles.push(handle);
        }
        for (rank, handle) in handles.into_iter().enumerate() {
            results[rank] = Some(handle.join().unwrap_or_else(|_| {
                panic!("rank {rank} panicked");
            }));
        }
    });
    results.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong() {
        let results = run_cluster(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, 42u64);
                comm.recv::<u64>(1, 8)
            } else {
                let v = comm.recv::<u64>(0, 7);
                comm.send(0, 8, v * 2);
                v
            }
        });
        assert_eq!(results, vec![84, 42]);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let results = run_cluster(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, 10u64);
                comm.send(1, 2, 20u64);
                comm.send(1, 3, 30u64);
                0
            } else {
                // Receive in reverse order of sending.
                let c = comm.recv::<u64>(0, 3);
                let b = comm.recv::<u64>(0, 2);
                let a = comm.recv::<u64>(0, 1);
                a + b * 100 + c * 10_000
            }
        });
        assert_eq!(results[1], 10 + 2000 + 300_000);
    }

    #[test]
    fn send_recv_is_deadlock_free() {
        let results = run_cluster(2, |comm| {
            let peer = 1 - comm.rank();
            comm.send_recv(peer, 5, comm.rank() as u64)
        });
        assert_eq!(results, vec![1, 0]);
    }

    #[test]
    fn barrier_and_broadcast() {
        let results = run_cluster(5, |comm| {
            comm.barrier();
            let v = if comm.rank() == 2 {
                comm.broadcast(2, Some(vec![1.0f64, 2.0, 3.0]))
            } else {
                comm.broadcast::<Vec<f64>>(2, None)
            };
            comm.barrier();
            v[2]
        });
        assert_eq!(results, vec![3.0; 5]);
    }

    #[test]
    fn gather_ordered_by_rank() {
        let results = run_cluster(4, |comm| comm.gather(0, comm.rank() as u64 * 10));
        assert_eq!(results[0], Some(vec![0, 10, 20, 30]));
        assert_eq!(results[1], None);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let results = run_cluster(3, |comm| {
            let mut data = vec![comm.rank() as f64, 1.0];
            comm.allreduce_sum_f64(&mut data);
            data
        });
        for r in results {
            assert_eq!(r, vec![3.0, 3.0]);
        }
    }

    #[test]
    fn split_into_halves() {
        let results = run_cluster(5, |mut comm| {
            // 0,1 -> color 0; 2,3,4 -> color 1 (non-power-of-two split)
            let color = u64::from(comm.rank() >= 2);
            let sub = comm.split(color);
            // Sum ranks within each sub-communicator.
            let mut v = vec![comm.rank() as f64];
            sub.allreduce_sum_f64(&mut v);
            (sub.rank(), sub.size(), v[0])
        });
        assert_eq!(results[0], (0, 2, 1.0)); // 0+1
        assert_eq!(results[1], (1, 2, 1.0));
        assert_eq!(results[2], (0, 3, 9.0)); // 2+3+4
        assert_eq!(results[3], (1, 3, 9.0));
        assert_eq!(results[4], (2, 3, 9.0));
    }

    #[test]
    fn recursive_split_matches_kd_pattern() {
        // Split 6 ranks 3 levels deep like the domain decomposition does.
        let results = run_cluster(6, |mut comm| {
            let mut path = Vec::new();
            let mut current = comm.split(0); // trivial split to exercise nesting
            let _ = &mut comm;
            while current.size() > 1 {
                let half = current.size() / 2;
                let color = u64::from(current.rank() >= half);
                path.push(color);
                current = current.split(color);
            }
            assert_eq!(current.size(), 1);
            path
        });
        // All leaf paths must be distinct.
        let mut seen = std::collections::HashSet::new();
        for p in results {
            assert!(seen.insert(p.clone()), "duplicate leaf path {p:?}");
        }
    }

    #[test]
    fn traffic_accounting() {
        let results = run_cluster(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 9, vec![0.0f64; 1000]);
            } else {
                let _ = comm.recv::<Vec<f64>>(0, 9);
            }
            comm.barrier();
            comm.cluster_stats().total_bytes_sent()
        });
        // 8008 payload bytes plus small barrier messages.
        assert!(results[0] >= 8008, "bytes {}", results[0]);
        assert_eq!(results[0], results[1]);
    }

    #[test]
    #[should_panic(expected = "rank 1 panicked")]
    fn type_mismatch_panics() {
        run_cluster(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, 1.0f64);
            } else {
                let _ = comm.recv::<u64>(0, 1);
            }
        });
    }

    #[test]
    fn many_ranks_with_small_stacks() {
        let results = run_cluster_with_stacks(64, 256 << 10, |comm| {
            let mut v = vec![1.0f64];
            comm.allreduce_sum_f64(&mut v);
            v[0] as usize
        });
        assert!(results.iter().all(|&r| r == 64));
    }
}
