//! An in-memory, MPI-like cluster simulator.
//!
//! Galactos' multi-node layer (paper §3.2) needs exactly four primitives:
//! point-to-point sends between ranks (the halo exchange follows the k-d
//! partition tree, exchanging boundary galaxies with a peer on the
//! opposite sub-communicator), communicator **splitting** into sub-
//! communicators of nearly equal size, barriers, and a final reduction of
//! the multipole arrays. This crate implements those primitives over
//! in-process threads and channels:
//!
//! * every rank runs as an OS thread inside [`run_cluster`];
//! * [`Comm`] provides `send`/`recv` (typed, tag-matched), `split`,
//!   `barrier`, `broadcast`, `gather`, reductions;
//! * all traffic is metered ([`TrafficStats`]) so benchmarks can report
//!   halo-exchange volumes — the quantity that stays *constant per rank*
//!   under weak scaling and explains the paper's flat Figure 6.
//!
//! The simulator trades absolute latency realism for full fidelity of
//! the communication *pattern*: any deadlock, mismatched tag or wrong
//! peer in the algorithm shows up here exactly as it would on a real
//! machine.
//!
//! The [`fault`] module adds a deterministic failure model on top:
//! seeded [`FaultPlan`]s that drop/delay/corrupt chosen messages or kill
//! chosen ranks, and [`run_cluster_supervised`] which converts rank
//! panics into structured [`RankFailure`]s so a driver can retry or
//! reassign lost work instead of losing the whole run.

#![forbid(unsafe_code)]

pub mod comm;
pub mod fault;
pub mod payload;
pub mod stats;

pub use comm::{
    run_cluster, run_cluster_supervised, run_cluster_with_stacks, Comm, RecvError, RecvErrorKind,
};
pub use fault::{
    FailureCause, FaultAction, FaultHarness, FaultPlan, InjectedKill, KillPoint, KillSpec,
    MessageFault, MessageSelector, RankFailure,
};
pub use payload::Payload;
pub use stats::{ClusterStats, TrafficStats};
