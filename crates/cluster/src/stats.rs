//! Per-rank and cluster-wide traffic accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Atomic traffic counters for one rank.
#[derive(Debug, Default)]
pub struct TrafficStats {
    pub messages_sent: AtomicU64,
    pub bytes_sent: AtomicU64,
    pub messages_received: AtomicU64,
    pub bytes_received: AtomicU64,
}

impl TrafficStats {
    pub fn record_send(&self, bytes: usize) {
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub fn record_recv(&self, bytes: usize) {
        self.messages_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            messages_sent: self.messages_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            messages_received: self.messages_received.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one rank's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficSnapshot {
    pub messages_sent: u64,
    pub bytes_sent: u64,
    pub messages_received: u64,
    pub bytes_received: u64,
}

/// Cluster-wide view over all ranks' counters.
#[derive(Clone, Debug)]
pub struct ClusterStats {
    per_rank: Vec<Arc<TrafficStats>>,
}

impl ClusterStats {
    pub fn new(num_ranks: usize) -> Self {
        ClusterStats {
            per_rank: (0..num_ranks)
                .map(|_| Arc::new(TrafficStats::default()))
                .collect(),
        }
    }

    pub fn rank(&self, r: usize) -> &Arc<TrafficStats> {
        &self.per_rank[r]
    }

    pub fn num_ranks(&self) -> usize {
        self.per_rank.len()
    }

    /// Snapshot every rank.
    pub fn snapshots(&self) -> Vec<TrafficSnapshot> {
        self.per_rank.iter().map(|s| s.snapshot()).collect()
    }

    /// Total bytes sent across the cluster.
    pub fn total_bytes_sent(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|s| s.bytes_sent.load(Ordering::Relaxed))
            .sum()
    }

    /// Total messages sent across the cluster.
    pub fn total_messages_sent(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|s| s.messages_sent.load(Ordering::Relaxed))
            .sum()
    }

    /// Maximum bytes sent by any single rank (load-balance indicator).
    pub fn max_bytes_sent_per_rank(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|s| s.bytes_sent.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = TrafficStats::default();
        s.record_send(100);
        s.record_send(50);
        s.record_recv(100);
        let snap = s.snapshot();
        assert_eq!(snap.messages_sent, 2);
        assert_eq!(snap.bytes_sent, 150);
        assert_eq!(snap.messages_received, 1);
        assert_eq!(snap.bytes_received, 100);
    }

    #[test]
    fn cluster_totals() {
        let cs = ClusterStats::new(3);
        cs.rank(0).record_send(10);
        cs.rank(1).record_send(20);
        cs.rank(2).record_send(5);
        assert_eq!(cs.total_bytes_sent(), 35);
        assert_eq!(cs.total_messages_sent(), 3);
        assert_eq!(cs.max_bytes_sent_per_rank(), 20);
        assert_eq!(cs.num_ranks(), 3);
        assert_eq!(cs.snapshots().len(), 3);
    }
}
