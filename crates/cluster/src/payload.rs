//! Message payload trait with byte accounting.
//!
//! Messages travel between ranks as moved Rust values (same address
//! space), but the simulator still needs to know how many bytes each
//! message *would* occupy on a wire to report halo-exchange volumes.
//! [`Payload::wire_bytes`] provides that estimate.

/// A value that can be sent between ranks.
pub trait Payload: Send + 'static {
    /// Approximate serialized size in bytes (used for traffic metering
    /// only; never for allocation).
    fn wire_bytes(&self) -> usize;
}

macro_rules! impl_payload_primitive {
    ($($t:ty),*) => {
        $(impl Payload for $t {
            fn wire_bytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        })*
    };
}

impl_payload_primitive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl Payload for () {
    fn wire_bytes(&self) -> usize {
        0
    }
}

impl<T: Send + Copy + 'static> Payload for Vec<T> {
    fn wire_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>() + 8
    }
}

impl<T: Send + Copy + 'static, const N: usize> Payload for [T; N] {
    fn wire_bytes(&self) -> usize {
        N * std::mem::size_of::<T>()
    }
}

impl Payload for String {
    fn wire_bytes(&self) -> usize {
        self.len() + 8
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn wire_bytes(&self) -> usize {
        self.0.wire_bytes() + self.1.wire_bytes()
    }
}

impl<A: Payload, B: Payload, C: Payload> Payload for (A, B, C) {
    fn wire_bytes(&self) -> usize {
        self.0.wire_bytes() + self.1.wire_bytes() + self.2.wire_bytes()
    }
}

impl<T: Payload> Payload for Option<T> {
    fn wire_bytes(&self) -> usize {
        1 + self.as_ref().map_or(0, |v| v.wire_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(3.0f64.wire_bytes(), 8);
        assert_eq!(1u32.wire_bytes(), 4);
        assert_eq!(().wire_bytes(), 0);
        assert_eq!(true.wire_bytes(), 1);
    }

    #[test]
    fn container_sizes() {
        let v: Vec<f64> = vec![0.0; 100];
        assert_eq!(v.wire_bytes(), 808);
        let s = String::from("hello");
        assert_eq!(s.wire_bytes(), 13);
        assert_eq!((1u64, 2u64).wire_bytes(), 16);
        assert_eq!(Some(5.0f64).wire_bytes(), 9);
        assert_eq!(None::<f64>.wire_bytes(), 1);
    }
}
