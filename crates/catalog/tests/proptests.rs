//! Property-based tests for catalog containers, I/O and geometry.

use galactos_catalog::io::{from_bytes, to_bytes};
use galactos_catalog::shard::{read_sharded, write_sharded};
use galactos_catalog::{Cap, Catalog, Galaxy, ShardAssignment, SurveyGeometry};
use galactos_math::Vec3;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Unique scratch directory per proptest case (cases run concurrently
/// across test threads and repeatedly within one run).
fn case_dir() -> std::path::PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir()
        .join("galactos_catalog_proptests")
        .join(format!("case_{}_{id}", std::process::id()))
}

fn arb_galaxies() -> impl Strategy<Value = Vec<Galaxy>> {
    prop::collection::vec(
        (
            -1000.0f64..1000.0,
            -1000.0f64..1000.0,
            -1000.0f64..1000.0,
            -5.0f64..5.0,
        )
            .prop_map(|(x, y, z, w)| Galaxy::new(Vec3::new(x, y, z), w)),
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn binary_roundtrip_is_lossless(galaxies in arb_galaxies()) {
        let cat = Catalog::new(galaxies);
        let back = from_bytes(&to_bytes(&cat)[..]).unwrap();
        prop_assert_eq!(back.len(), cat.len());
        for (a, b) in back.galaxies.iter().zip(cat.galaxies.iter()) {
            prop_assert_eq!(a.pos, b.pos);
            prop_assert_eq!(a.weight, b.weight);
        }
        prop_assert_eq!(back.periodic, cat.periodic);
    }

    #[test]
    fn data_minus_randoms_always_zero_weight(
        data in arb_galaxies(),
        randoms in arb_galaxies(),
    ) {
        let d = Catalog::new(
            data.into_iter().map(|mut g| { g.weight = g.weight.abs() + 0.1; g }).collect(),
        );
        let r = Catalog::new(
            randoms.into_iter().map(|mut g| { g.weight = g.weight.abs() + 0.1; g }).collect(),
        );
        prop_assume!(!d.is_empty() && !r.is_empty());
        let field = Catalog::data_minus_randoms(&d, &r);
        let total_scale = d.total_weight().abs() + r.total_weight().abs();
        prop_assert!(field.total_weight().abs() < 1e-9 * total_scale.max(1.0));
        prop_assert_eq!(field.len(), d.len() + r.len());
    }

    #[test]
    fn sharded_roundtrip_reconstructs_exact_catalog(
        galaxies in arb_galaxies(),
        num_shards in 1usize..6,
        is_periodic in prop::bool::ANY,
        box_len in 1000.0f64..2000.0,
    ) {
        let mut cat = Catalog::new(galaxies);
        cat.periodic = is_periodic.then_some(box_len);
        // Arbitrary (non-spatial) assignment: the format must roundtrip
        // for any partition of the records; every shard declares the
        // full bounds so the assignment is trivially region-consistent.
        let assignment = ShardAssignment {
            shard_of: (0..cat.len()).map(|g| (g % num_shards) as u32).collect(),
            bounds: vec![cat.bounds; num_shards],
        };
        let dir = case_dir();
        let manifest = write_sharded(&cat, &assignment, &dir).unwrap();
        prop_assert_eq!(manifest.total_count as usize, cat.len());
        let (back_manifest, back) = read_sharded(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(back_manifest, manifest);
        prop_assert_eq!(back.len(), cat.len());
        // Bit-exact bounds and periodicity.
        prop_assert_eq!(back.bounds, cat.bounds);
        prop_assert_eq!(back.periodic, cat.periodic);
        // Shard-by-shard reads deliver shard-major order: galaxy g went
        // to shard g % num_shards, preserving record order within each
        // shard — reconstruct that order and compare bit-exactly.
        let mut expected: Vec<&Galaxy> = Vec::with_capacity(cat.len());
        for s in 0..num_shards {
            expected.extend(cat.galaxies.iter().skip(s).step_by(num_shards));
        }
        for (a, b) in back.galaxies.iter().zip(expected) {
            prop_assert_eq!(a.pos.x.to_bits(), b.pos.x.to_bits());
            prop_assert_eq!(a.pos.y.to_bits(), b.pos.y.to_bits());
            prop_assert_eq!(a.pos.z.to_bits(), b.pos.z.to_bits());
            prop_assert_eq!(a.weight.to_bits(), b.weight.to_bits());
        }
    }

    #[test]
    fn bounds_contain_every_galaxy(galaxies in arb_galaxies()) {
        prop_assume!(!galaxies.is_empty());
        let cat = Catalog::new(galaxies);
        for g in &cat.galaxies {
            prop_assert!(cat.bounds.contains(g.pos));
        }
    }

    #[test]
    fn subset_preserves_order_and_values(
        galaxies in arb_galaxies(),
        picks in prop::collection::vec(0usize..200, 0..50),
    ) {
        prop_assume!(!galaxies.is_empty());
        let cat = Catalog::new(galaxies);
        let indices: Vec<usize> = picks.into_iter().map(|p| p % cat.len()).collect();
        let sub = cat.subset(&indices);
        prop_assert_eq!(sub.len(), indices.len());
        for (s, &i) in sub.galaxies.iter().zip(indices.iter()) {
            prop_assert_eq!(s.pos, cat.galaxies[i].pos);
        }
    }

    #[test]
    fn survey_footprint_is_consistent_with_geometry(
        px in -200.0f64..200.0,
        py in -200.0f64..200.0,
        pz in -200.0f64..200.0,
        rmin in 1.0f64..50.0,
        extra in 1.0f64..100.0,
        cap_z in 0.1f64..1.0,
    ) {
        let rmax = rmin + extra;
        let mut survey = SurveyGeometry::full_shell(Vec3::ZERO, rmin, rmax);
        survey.holes.push(Cap::new(Vec3::Z, cap_z));
        let p = Vec3::new(px, py, pz);
        let inside = survey.in_footprint(p);
        let r = p.norm();
        if r < rmin || r > rmax {
            prop_assert!(!inside, "outside the shell must be excluded");
        } else if r > 0.0 {
            let in_cap = (p / r).dot(Vec3::Z) >= cap_z.cos();
            prop_assert_eq!(inside, !in_cap);
        }
    }

    #[test]
    fn completeness_is_monotone_interpolation(
        r in 0.0f64..120.0,
        f_lo in 0.0f64..1.0,
        f_hi in 0.0f64..1.0,
    ) {
        let mut survey = SurveyGeometry::full_shell(Vec3::ZERO, 0.0, 120.0);
        survey.radial_completeness = vec![(10.0, f_lo), (100.0, f_hi)];
        let c = survey.completeness(r);
        let (lo, hi) = if f_lo <= f_hi { (f_lo, f_hi) } else { (f_hi, f_lo) };
        prop_assert!(c >= lo - 1e-12 && c <= hi + 1e-12, "c={c} outside [{lo},{hi}]");
    }
}
