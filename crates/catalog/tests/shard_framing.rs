//! Framing robustness for GCAT v1 and v2: every possible truncation
//! point must produce an error (never a panic, abort, or silently
//! shortened catalog), and manifests/shard files must roundtrip.

use galactos_catalog::io::{from_bytes, to_bytes, CatalogIoError};
use galactos_catalog::shard::{
    write_sharded, ShardManifest, ShardReader, HEADER_BYTES, MANIFEST_FILE,
};
use galactos_catalog::{Catalog, Galaxy, ShardAssignment};
use galactos_math::Vec3;
use std::path::PathBuf;

fn sample_catalog(n: usize) -> Catalog {
    let galaxies = (0..n)
        .map(|i| {
            let t = i as f64;
            Galaxy::new(
                Vec3::new(t.sin() * 5.0 + 5.0, t.cos() * 5.0 + 5.0, (t * 0.37) % 10.0),
                0.5 + 0.01 * t,
            )
        })
        .collect();
    Catalog::new(galaxies)
}

fn two_shard_assignment(cat: &Catalog) -> ShardAssignment {
    let mid = cat.bounds.center().x;
    let (lo, hi) = cat.bounds.split(0, mid);
    ShardAssignment {
        shard_of: cat
            .galaxies
            .iter()
            .map(|g| u32::from(g.pos.x >= mid))
            .collect(),
        bounds: vec![lo, hi],
    }
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("galactos_shard_framing_test")
        .join(format!("{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn v1_truncation_at_every_byte_is_an_error() {
    let cat = sample_catalog(5);
    let bytes = to_bytes(&cat);
    // Every proper prefix — header boundaries (magic, version, count,
    // flags, box_len, each bounds component) and every mid-record cut —
    // must error, never panic or return a shortened catalog.
    for cut in 0..bytes.len() {
        let result = from_bytes(&bytes[..cut]);
        assert!(
            matches!(
                result,
                Err(CatalogIoError::Truncated) | Err(CatalogIoError::BadMagic(_))
            ),
            "prefix of {cut} bytes must be rejected, got {result:?}"
        );
    }
    assert_eq!(from_bytes(&bytes[..]).unwrap().len(), 5);
}

#[test]
fn v2_manifest_truncation_at_every_byte_is_an_error() {
    let cat = sample_catalog(12);
    let dir = tmpdir("manifest_truncation");
    let manifest = write_sharded(&cat, &two_shard_assignment(&cat), &dir).unwrap();
    let bytes = manifest.to_bytes();
    for cut in 0..bytes.len() {
        let result = ShardManifest::from_bytes(&bytes[..cut]);
        assert!(
            matches!(
                result,
                Err(CatalogIoError::Truncated) | Err(CatalogIoError::BadMagic(_))
            ),
            "manifest prefix of {cut} bytes must be rejected, got {result:?}"
        );
    }
    assert_eq!(ShardManifest::from_bytes(&bytes[..]).unwrap(), manifest);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn v2_shard_file_truncation_at_every_byte_is_an_error() {
    let cat = sample_catalog(9);
    let dir = tmpdir("shard_truncation");
    let manifest = write_sharded(&cat, &two_shard_assignment(&cat), &dir).unwrap();
    let path = dir.join(ShardManifest::shard_file_name(0));
    let full = std::fs::read(&path).unwrap();
    assert_eq!(
        full.len(),
        HEADER_BYTES + manifest.shards[0].count as usize * 32
    );
    for cut in 0..full.len() {
        std::fs::write(&path, &full[..cut]).unwrap();
        let outcome = ShardReader::open(&dir, &manifest, 0).and_then(|mut reader| {
            let mut out = Vec::new();
            while reader.read_chunk(&mut out, 4)? != 0 {}
            Ok(out)
        });
        // Reader errors arrive wrapped in shard context naming the file.
        let err = outcome.expect_err("shard prefix must be rejected");
        assert!(
            matches!(
                err.root_cause(),
                CatalogIoError::Truncated | CatalogIoError::BadMagic(_)
            ),
            "shard prefix of {cut} bytes must be rejected, got {err:?}"
        );
        let msg = err.to_string();
        assert!(
            msg.contains(&path.display().to_string()) && msg.contains("shard 0"),
            "error must name the shard file and index: {msg}"
        );
    }
    // Restore the file: the intact shard must read back fully.
    std::fs::write(&path, &full).unwrap();
    let galaxies = ShardReader::open(&dir, &manifest, 0)
        .unwrap()
        .read_all()
        .unwrap();
    assert_eq!(galaxies.len() as u64, manifest.shards[0].count);
    std::fs::remove_dir_all(&dir).ok();
}

/// FNV-1a 64, reimplemented so a test can forge a *checksum-valid*
/// header with hostile field values.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn v2_manifest_rejects_huge_shard_count() {
    // A num_shards of u32::MAX with a *valid* header checksum must not
    // provoke a giant entry-table allocation: the checked sizing sees
    // the bytes aren't there and reports truncation.
    let cat = sample_catalog(4);
    let dir = tmpdir("huge_shard_count");
    let manifest = write_sharded(&cat, &two_shard_assignment(&cat), &dir).unwrap();
    let mut bytes = manifest.to_bytes().to_vec();
    bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
    let sum = fnv1a(&bytes[..84]);
    bytes[84..92].copy_from_slice(&sum.to_le_bytes());
    let result = ShardManifest::from_bytes(&bytes);
    assert!(
        matches!(result, Err(CatalogIoError::Truncated)),
        "got {result:?}"
    );
    // Without the checksum fix-up the corruption is caught even earlier.
    bytes[84] ^= 0xFF;
    assert!(matches!(
        ShardManifest::from_bytes(&bytes),
        Err(CatalogIoError::Corrupt(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn manifest_and_shard_files_roundtrip_through_disk() {
    let mut cat = sample_catalog(31);
    cat.periodic = Some(10.0);
    let dir = tmpdir("disk_roundtrip");
    let manifest = write_sharded(&cat, &two_shard_assignment(&cat), &dir).unwrap();
    let back = ShardManifest::read(dir.join(MANIFEST_FILE)).unwrap();
    assert_eq!(back, manifest);
    assert_eq!(back.periodic, Some(10.0));
    assert_eq!(back.bounds, cat.bounds);
    let mut total = 0u64;
    let mut weight = 0.0;
    for s in 0..back.num_shards() {
        let galaxies = ShardReader::open(&dir, &back, s)
            .unwrap()
            .read_all()
            .unwrap();
        assert_eq!(galaxies.len() as u64, back.shards[s].count);
        total += galaxies.len() as u64;
        weight += galaxies.iter().map(|g| g.weight).sum::<f64>();
    }
    assert_eq!(total, 31);
    assert!((weight - cat.total_weight()).abs() < 1e-12 * cat.total_weight().abs());
    std::fs::remove_dir_all(&dir).ok();
}
