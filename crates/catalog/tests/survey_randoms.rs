//! Statistical and determinism guarantees of
//! `SurveyGeometry::sample_randoms` — the Monte-Carlo source of the
//! edge-correction window. If these samples are wrong, every
//! "corrected" ζ downstream is silently wrong too.

use galactos_catalog::{Cap, Catalog, SurveyGeometry};
use galactos_math::Vec3;

fn holed_geometry() -> SurveyGeometry {
    let mut s = SurveyGeometry::full_shell(Vec3::new(10.0, -5.0, 2.0), 25.0, 70.0);
    s.holes.push(Cap::new(Vec3::Z, 0.4));
    s.holes.push(Cap::new(Vec3::new(1.0, 1.0, 0.0), 0.25));
    s
}

#[test]
fn hole_exclusion_is_exact() {
    // Not statistical: *every* sampled point must clear every cap and
    // the radial shell, by construction of the rejection sampler.
    let s = holed_geometry();
    let randoms = s.sample_randoms(20_000, 7);
    assert_eq!(randoms.len(), 20_000);
    for g in &randoms.galaxies {
        let rel = g.pos - s.observer;
        let r = rel.norm();
        assert!(r >= s.r_min && r <= s.r_max, "radius {r} outside shell");
        let u = rel.normalized().unwrap();
        for (i, cap) in s.holes.iter().enumerate() {
            assert!(
                !cap.contains_direction(u),
                "point {:?} inside hole {i}",
                g.pos
            );
        }
        assert_eq!(g.weight, 1.0, "randoms must be unit-weight");
    }
}

#[test]
fn radial_profile_matches_completeness() {
    // KS-style check: the empirical radial CDF must match the
    // analytic ∫ r²·c(r) dr profile of shell volume × completeness.
    let mut s = SurveyGeometry::full_shell(Vec3::ZERO, 20.0, 60.0);
    s.radial_completeness = vec![(20.0, 1.0), (60.0, 0.25)];
    let n = 40_000;
    let randoms = s.sample_randoms(n, 99);

    // Analytic CDF by fine quadrature of r²·c(r).
    let steps = 4000;
    let h = (s.r_max - s.r_min) / steps as f64;
    let mut cum = vec![0.0f64];
    for i in 0..steps {
        let r = s.r_min + (i as f64 + 0.5) * h;
        cum.push(cum[i] + r * r * s.completeness(r) * h);
    }
    let total = *cum.last().unwrap();
    let analytic_cdf = |r: f64| {
        let t = ((r - s.r_min) / h).clamp(0.0, steps as f64);
        let i = (t as usize).min(steps - 1);
        let frac = t - i as f64;
        (cum[i] + frac * (cum[i + 1] - cum[i])) / total
    };

    // Empirical CDF: sort radii once, then the KS statistic.
    let mut radii: Vec<f64> = randoms.galaxies.iter().map(|g| g.pos.norm()).collect();
    radii.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut ks = 0.0f64;
    for (i, &r) in radii.iter().enumerate() {
        let emp_hi = (i + 1) as f64 / n as f64;
        let emp_lo = i as f64 / n as f64;
        let a = analytic_cdf(r);
        ks = ks.max((emp_hi - a).abs()).max((emp_lo - a).abs());
    }
    // KS 1% critical value is 1.63/√n ≈ 0.0082 at n = 40k; the seed is
    // fixed so this is a deterministic regression bound, padded 2×.
    assert!(ks < 0.016, "KS statistic {ks} too large");
}

#[test]
fn uniform_shell_follows_volume() {
    // Without a completeness table the radial CDF is pure shell
    // volume: (r³ − r_min³)/(r_max³ − r_min³).
    let s = SurveyGeometry::full_shell(Vec3::ZERO, 10.0, 50.0);
    let n = 30_000;
    let randoms = s.sample_randoms(n, 3);
    let vol_cdf = |r: f64| (r.powi(3) - s.r_min.powi(3)) / (s.r_max.powi(3) - s.r_min.powi(3));
    for split in [20.0, 30.0, 40.0] {
        let below = randoms
            .galaxies
            .iter()
            .filter(|g| g.pos.norm() < split)
            .count() as f64
            / n as f64;
        let want = vol_cdf(split);
        assert!(
            (below - want).abs() < 0.01,
            "split {split}: {below} vs {want}"
        );
    }
}

#[test]
fn same_seed_is_bit_identical_different_seed_is_not() {
    let s = holed_geometry();
    let a = s.sample_randoms(5_000, 42);
    let b = s.sample_randoms(5_000, 42);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.galaxies.iter().zip(b.galaxies.iter()) {
        assert_eq!(x.pos, y.pos);
        assert_eq!(x.weight, y.weight);
    }
    let c = s.sample_randoms(5_000, 43);
    assert!(
        a.galaxies
            .iter()
            .zip(c.galaxies.iter())
            .any(|(x, y)| x.pos != y.pos),
        "different seeds must decorrelate the stream"
    );
}

#[test]
fn randfact_sizing() {
    let s = holed_geometry();
    let data = s.sample_randoms(1_234, 1);
    let randoms = s.sample_randoms_for(&data, 3, 2);
    assert_eq!(randoms.len(), 3 * data.len());
    // randfact sizing is just a wrapper over sample_randoms: same seed,
    // same stream.
    let direct = s.sample_randoms(3 * data.len(), 2);
    assert_eq!(randoms.galaxies[100].pos, direct.galaxies[100].pos);
}

#[test]
#[should_panic(expected = "randfact")]
fn zero_randfact_panics() {
    let s = holed_geometry();
    let data = s.sample_randoms(10, 1);
    s.sample_randoms_for(&data, 0, 2);
}

#[test]
#[should_panic(expected = "empty data catalog")]
fn empty_data_panics() {
    let s = holed_geometry();
    s.sample_randoms_for(&Catalog::new(Vec::new()), 2, 2);
}
