//! GCAT v2: a spatially-sharded catalog format with streaming readers.
//!
//! The paper's headline catalog (2 billion galaxies, §1) does not fit
//! in one rank's memory, so v2 stores a catalog as a *directory* of
//! bounded-size shard files plus one small manifest, instead of v1's
//! monolithic stream. Shards are meant to follow the same recursive-
//! bisection domains as the halo exchange (see
//! `galactos_domain::shard::write_sharded`), so a distributed run can
//! open only its own shards plus the neighbors intersecting its `rmax`
//! halo — no rank ever materializes the full catalog.
//!
//! ## On-disk layout
//!
//! All integers and floats are little-endian. Every header ends in an
//! FNV-1a 64 checksum of the bytes before it, and every shard's record
//! payload is checksummed into the manifest, so corrupt input fails
//! loudly instead of feeding garbage geometry into a week-long run.
//!
//! `manifest.gcm` (92-byte header + 72 bytes per shard + 8):
//!
//! ```text
//! magic        u32   0x47434154 ("GCAT")
//! version      u32   2
//! kind         u32   0 (manifest)
//! num_shards   u32
//! total_count  u64
//! flags        u32   bit 0: periodic
//! box_len      f64   (valid when periodic)
//! bounds       6×f64 (global lo.xyz, hi.xyz)
//! checksum     u64   FNV-1a of the 84 header bytes above
//! entries      num_shards × {
//!     count            u64
//!     weight_sum       f64
//!     bounds           6×f64  (the shard's spatial region)
//!     records_checksum u64    FNV-1a of the shard's record bytes
//! }
//! checksum     u64   FNV-1a of all entry bytes
//! ```
//!
//! `shard_NNNN.gcat` (92-byte header, mirrors the manifest header):
//!
//! ```text
//! magic        u32   0x47434154
//! version      u32   2
//! kind         u32   1 (shard)
//! shard_index  u32
//! count        u64
//! flags        u32
//! box_len      f64
//! bounds       6×f64 (the shard's spatial region)
//! checksum     u64   FNV-1a of the 84 header bytes above
//! records      count × (x, y, z, weight) f64
//! ```
//!
//! [`ShardReader`] streams records in caller-sized chunks, cross-checks
//! each shard file against the manifest entry (index, count, bounds)
//! and verifies the payload checksum once the last record is delivered.

use crate::galaxy::{Catalog, Galaxy};
use crate::io::{checked_record_count, CatalogIoError, MAGIC, RECORD_BYTES};
use bytes::{Buf, BufMut, BytesMut};
use galactos_math::{Aabb, Vec3};
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// GCAT version written by this module.
pub const SHARD_VERSION: u32 = 2;
/// `kind` discriminant of a manifest header.
const KIND_MANIFEST: u32 = 0;
/// `kind` discriminant of a shard-file header.
const KIND_SHARD: u32 = 1;
/// Bytes in a manifest or shard header, checksum included.
pub const HEADER_BYTES: usize = 92;
/// Bytes in one manifest shard entry.
pub const ENTRY_BYTES: usize = 72;
/// Default file name of the manifest inside a shard directory.
pub const MANIFEST_FILE: &str = "manifest.gcm";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64 accumulator (dependency-free; collision
/// resistance is not a goal — detecting bit rot and truncation is).
#[derive(Clone, Copy, Debug)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    fn finish(self) -> u64 {
        self.0
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut f = Fnv::new();
    f.update(bytes);
    f.finish()
}

/// Per-shard metadata recorded in the manifest.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardMeta {
    /// Number of galaxy records in the shard file.
    pub count: u64,
    /// Sum of the shard's weights (accumulated in record order).
    pub weight_sum: f64,
    /// The shard's spatial region. Galaxies of the shard lie inside it;
    /// regions of sibling shards tile the catalog bounds.
    pub bounds: Aabb,
    /// FNV-1a 64 of the shard's record bytes.
    pub records_checksum: u64,
}

/// The v2 manifest: global catalog facts plus one [`ShardMeta`] per
/// shard. Reading it costs `92 + 72·num_shards + 8` bytes — this is all
/// a rank needs to decide which shard files to open.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardManifest {
    /// Total records across all shards.
    pub total_count: u64,
    /// Global spatial bounds of the catalog.
    pub bounds: Aabb,
    /// `Some(L)` when the catalog lives in a periodic cube `[0, L)³`.
    pub periodic: Option<f64>,
    /// Per-shard metadata, indexed by shard id.
    pub shards: Vec<ShardMeta>,
}

fn put_aabb(buf: &mut BytesMut, b: &Aabb) {
    for v in [b.lo, b.hi] {
        buf.put_f64_le(v.x);
        buf.put_f64_le(v.y);
        buf.put_f64_le(v.z);
    }
}

fn get_aabb(buf: &mut impl Buf) -> Aabb {
    let lo = Vec3::new(buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le());
    let hi = Vec3::new(buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le());
    Aabb { lo, hi }
}

impl ShardManifest {
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// File name of shard `index` inside the shard directory.
    pub fn shard_file_name(index: usize) -> String {
        format!("shard_{index:04}.gcat")
    }

    /// Encode the manifest into bytes.
    pub fn to_bytes(&self) -> BytesMut {
        let mut buf = BytesMut::with_capacity(HEADER_BYTES + ENTRY_BYTES * self.shards.len() + 8);
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(SHARD_VERSION);
        buf.put_u32_le(KIND_MANIFEST);
        buf.put_u32_le(u32::try_from(self.shards.len()).expect("shard count fits in u32"));
        buf.put_u64_le(self.total_count);
        buf.put_u32_le(u32::from(self.periodic.is_some()));
        buf.put_f64_le(self.periodic.unwrap_or(0.0));
        put_aabb(&mut buf, &self.bounds);
        let header_sum = fnv1a(&buf[..]);
        buf.put_u64_le(header_sum);
        let entries_start = buf.len();
        for s in &self.shards {
            buf.put_u64_le(s.count);
            buf.put_f64_le(s.weight_sum);
            put_aabb(&mut buf, &s.bounds);
            buf.put_u64_le(s.records_checksum);
        }
        let entries_sum = fnv1a(&buf[entries_start..]);
        buf.put_u64_le(entries_sum);
        buf
    }

    /// Decode a manifest, verifying both checksums.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CatalogIoError> {
        if bytes.len() < HEADER_BYTES {
            return Err(CatalogIoError::Truncated);
        }
        let mut buf = bytes;
        let magic = buf.get_u32_le();
        if magic != MAGIC {
            return Err(CatalogIoError::BadMagic(magic));
        }
        let version = buf.get_u32_le();
        if version != SHARD_VERSION {
            return Err(CatalogIoError::BadVersion(version));
        }
        let kind = buf.get_u32_le();
        if kind != KIND_MANIFEST {
            return Err(CatalogIoError::Corrupt(format!(
                "expected manifest kind {KIND_MANIFEST}, found {kind}"
            )));
        }
        let num_shards = usize::try_from(buf.get_u32_le()).expect("u32 fits in usize");
        let total_count = buf.get_u64_le();
        let flags = buf.get_u32_le();
        let box_len = buf.get_f64_le();
        let bounds = get_aabb(&mut buf);
        let declared = buf.get_u64_le();
        let actual = fnv1a(&bytes[..HEADER_BYTES - 8]);
        if declared != actual {
            return Err(CatalogIoError::Corrupt(format!(
                "manifest header checksum mismatch: stored {declared:#018x}, computed {actual:#018x}"
            )));
        }
        // num_shards is attacker-controlled: size the entry table with
        // checked arithmetic, like the record counts.
        let entry_bytes = num_shards
            .checked_mul(ENTRY_BYTES)
            .ok_or(CatalogIoError::Truncated)?;
        if buf.remaining() < entry_bytes + 8 {
            return Err(CatalogIoError::Truncated);
        }
        let entries_raw = &bytes[HEADER_BYTES..HEADER_BYTES + entry_bytes];
        let mut shards = Vec::with_capacity(num_shards);
        let mut sum = 0u64;
        for _ in 0..num_shards {
            let count = buf.get_u64_le();
            let weight_sum = buf.get_f64_le();
            let shard_bounds = get_aabb(&mut buf);
            let records_checksum = buf.get_u64_le();
            sum = sum
                .checked_add(count)
                .ok_or_else(|| CatalogIoError::Corrupt("shard counts overflow u64".into()))?;
            shards.push(ShardMeta {
                count,
                weight_sum,
                bounds: shard_bounds,
                records_checksum,
            });
        }
        let declared_entries = buf.get_u64_le();
        let actual_entries = fnv1a(entries_raw);
        if declared_entries != actual_entries {
            return Err(CatalogIoError::Corrupt(
                "manifest entry table checksum mismatch".into(),
            ));
        }
        if sum != total_count {
            return Err(CatalogIoError::Corrupt(format!(
                "shard counts sum to {sum}, manifest claims {total_count}"
            )));
        }
        Ok(ShardManifest {
            total_count,
            bounds,
            periodic: if flags & 1 != 0 { Some(box_len) } else { None },
            shards,
        })
    }

    /// Write the manifest to `path`.
    pub fn write(&self, path: impl AsRef<Path>) -> Result<(), CatalogIoError> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(&self.to_bytes())?;
        w.flush()?;
        Ok(())
    }

    /// Read and verify a manifest from `path`.
    pub fn read(path: impl AsRef<Path>) -> Result<Self, CatalogIoError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }
}

/// How galaxies map onto shards: a shard id per galaxy plus the spatial
/// region declared for each shard.
///
/// Constructed by hand for tests, or from a
/// `galactos_domain::partition::DomainPlan` (see
/// `galactos_domain::shard::plan_assignment`) so shards coincide with
/// the recursive-bisection domains the halo exchange uses.
#[derive(Clone, Debug)]
pub struct ShardAssignment {
    /// `shard_of[g]` = shard owning galaxy `g`.
    pub shard_of: Vec<u32>,
    /// `bounds[s]` = spatial region of shard `s`; must contain every
    /// galaxy assigned to `s`.
    pub bounds: Vec<Aabb>,
}

/// Streaming writer for one shard directory.
///
/// Records are pushed one at a time and go straight to the shard files
/// through fixed-size `BufWriter`s, so writing a catalog of any size
/// needs memory proportional to the *shard count*, not the galaxy
/// count. [`ShardedWriter::finish`] seeks back to patch each header
/// with the final count/checksum and writes the manifest.
///
/// Every shard file stays open for the writer's lifetime (records
/// arrive in catalog order, not shard order), so the shard count is
/// bounded by the process's open-file limit — typically 1024 by
/// default on Linux. Shard counts are expected to track *rank* counts
/// (thousands at most, cf. the paper's 9636); raise `ulimit -n` or
/// shard in passes if you need more.
pub struct ShardedWriter {
    dir: PathBuf,
    periodic: Option<f64>,
    bounds: Aabb,
    files: Vec<BufWriter<File>>,
    metas: Vec<ShardMeta>,
    sums: Vec<Fnv>,
    total: u64,
}

fn shard_header(index: u32, count: u64, periodic: Option<f64>, bounds: &Aabb) -> BytesMut {
    let mut buf = BytesMut::with_capacity(HEADER_BYTES);
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(SHARD_VERSION);
    buf.put_u32_le(KIND_SHARD);
    buf.put_u32_le(index);
    buf.put_u64_le(count);
    buf.put_u32_le(u32::from(periodic.is_some()));
    buf.put_f64_le(periodic.unwrap_or(0.0));
    put_aabb(&mut buf, bounds);
    let sum = fnv1a(&buf[..]);
    buf.put_u64_le(sum);
    buf
}

impl ShardedWriter {
    /// Create `dir` (and the empty shard files) for a catalog with the
    /// given global facts and per-shard regions.
    pub fn create(
        dir: impl AsRef<Path>,
        bounds: Aabb,
        periodic: Option<f64>,
        shard_bounds: &[Aabb],
    ) -> Result<Self, CatalogIoError> {
        assert!(!shard_bounds.is_empty(), "need at least one shard");
        assert!(
            u32::try_from(shard_bounds.len()).is_ok(),
            "shard count must fit in u32"
        );
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut files = Vec::with_capacity(shard_bounds.len());
        let mut metas = Vec::with_capacity(shard_bounds.len());
        for (i, &b) in shard_bounds.iter().enumerate() {
            let mut w = BufWriter::new(File::create(dir.join(ShardManifest::shard_file_name(i)))?);
            // Placeholder header; finish() rewrites it with the real
            // count once the record stream is complete.
            let index = u32::try_from(i).expect("shard count checked at creation");
            w.write_all(&shard_header(index, 0, periodic, &b))?;
            files.push(w);
            metas.push(ShardMeta {
                count: 0,
                weight_sum: 0.0,
                bounds: b,
                records_checksum: 0,
            });
        }
        Ok(ShardedWriter {
            dir,
            periodic,
            bounds,
            files,
            metas,
            sums: vec![Fnv::new(); shard_bounds.len()],
            total: 0,
        })
    }

    #[inline]
    pub fn num_shards(&self) -> usize {
        self.files.len()
    }

    /// Append one galaxy to shard `shard`.
    pub fn push(&mut self, shard: usize, g: &Galaxy) -> Result<(), CatalogIoError> {
        let mut rec = [0u8; RECORD_BYTES];
        rec[0..8].copy_from_slice(&g.pos.x.to_le_bytes());
        rec[8..16].copy_from_slice(&g.pos.y.to_le_bytes());
        rec[16..24].copy_from_slice(&g.pos.z.to_le_bytes());
        rec[24..32].copy_from_slice(&g.weight.to_le_bytes());
        self.files[shard].write_all(&rec)?;
        self.sums[shard].update(&rec);
        let meta = &mut self.metas[shard];
        meta.count += 1;
        meta.weight_sum += g.weight;
        self.total += 1;
        Ok(())
    }

    /// Patch the shard headers, write the manifest, and return it.
    pub fn finish(mut self) -> Result<ShardManifest, CatalogIoError> {
        for (i, mut w) in self.files.drain(..).enumerate() {
            let meta = &mut self.metas[i];
            meta.records_checksum = self.sums[i].finish();
            w.seek(SeekFrom::Start(0))?;
            w.write_all(&shard_header(
                u32::try_from(i).expect("shard count checked at creation"),
                meta.count,
                self.periodic,
                &meta.bounds,
            ))?;
            w.flush()?;
        }
        let manifest = ShardManifest {
            total_count: self.total,
            bounds: self.bounds,
            periodic: self.periodic,
            shards: self.metas,
        };
        manifest.write(self.dir.join(MANIFEST_FILE))?;
        Ok(manifest)
    }
}

/// Write `catalog` into `dir` as a GCAT v2 shard directory following
/// `assignment`, returning the manifest.
///
/// Every galaxy must be assigned to a shard inside its declared region;
/// debug builds assert this.
pub fn write_sharded(
    catalog: &Catalog,
    assignment: &ShardAssignment,
    dir: impl AsRef<Path>,
) -> Result<ShardManifest, CatalogIoError> {
    assert_eq!(
        assignment.shard_of.len(),
        catalog.len(),
        "assignment must cover every galaxy"
    );
    let mut writer =
        ShardedWriter::create(dir, catalog.bounds, catalog.periodic, &assignment.bounds)?;
    for (g, &s) in catalog.galaxies.iter().zip(&assignment.shard_of) {
        let si = usize::try_from(s).expect("u32 shard id fits in usize");
        debug_assert!(
            assignment.bounds[si].distance_sq_to_point(g.pos) < 1e-18,
            "galaxy at {:?} assigned to shard {s} outside its region",
            g.pos
        );
        writer.push(si, g)?;
    }
    writer.finish()
}

/// Streaming reader for one shard file.
///
/// Validates the shard header against the manifest entry at open, then
/// hands out records in caller-sized chunks; after the last record it
/// verifies the payload checksum and count, so short files and bit rot
/// surface as [`CatalogIoError::Truncated`] / [`CatalogIoError::Corrupt`]
/// instead of silently thinning the catalog. Every error is wrapped in
/// [`CatalogIoError::InShard`] carrying the shard file path and index,
/// so a rank streaming N shards can name the bad one.
pub struct ShardReader {
    file: std::io::BufReader<File>,
    path: std::path::PathBuf,
    meta: ShardMeta,
    index: usize,
    delivered: u64,
    sum: Fnv,
    bytes_read: u64,
    verified: bool,
}

impl ShardReader {
    /// Open shard `index` of `manifest` inside `dir`.
    pub fn open(
        dir: impl AsRef<Path>,
        manifest: &ShardManifest,
        index: usize,
    ) -> Result<Self, CatalogIoError> {
        let path = dir.as_ref().join(ShardManifest::shard_file_name(index));
        Self::open_inner(path.clone(), manifest, index).map_err(|e| e.in_shard(&path, index))
    }

    fn open_inner(
        path: std::path::PathBuf,
        manifest: &ShardManifest,
        index: usize,
    ) -> Result<Self, CatalogIoError> {
        let meta = *manifest
            .shards
            .get(index)
            .unwrap_or_else(|| panic!("shard {index} out of range"));
        let mut file = std::io::BufReader::new(File::open(&path)?);
        let mut header = [0u8; HEADER_BYTES];
        read_exact_or_truncated(&mut file, &mut header)?;
        let mut buf = &header[..];
        let magic = buf.get_u32_le();
        if magic != MAGIC {
            return Err(CatalogIoError::BadMagic(magic));
        }
        let version = buf.get_u32_le();
        if version != SHARD_VERSION {
            return Err(CatalogIoError::BadVersion(version));
        }
        let kind = buf.get_u32_le();
        if kind != KIND_SHARD {
            return Err(CatalogIoError::Corrupt(format!(
                "expected shard kind {KIND_SHARD}, found {kind}"
            )));
        }
        let stored_index = buf.get_u32_le();
        let count = buf.get_u64_le();
        let _flags = buf.get_u32_le();
        let _box_len = buf.get_f64_le();
        let bounds = get_aabb(&mut buf);
        let declared = buf.get_u64_le();
        let actual = fnv1a(&header[..HEADER_BYTES - 8]);
        if declared != actual {
            return Err(CatalogIoError::Corrupt(format!(
                "shard {index} header checksum mismatch"
            )));
        }
        if usize::try_from(stored_index).expect("u32 fits in usize") != index {
            return Err(CatalogIoError::Corrupt(format!(
                "shard file claims index {stored_index}, manifest expects {index}"
            )));
        }
        if count != meta.count {
            return Err(CatalogIoError::Corrupt(format!(
                "shard {index} holds {count} records, manifest expects {}",
                meta.count
            )));
        }
        if bounds != meta.bounds {
            return Err(CatalogIoError::Corrupt(format!(
                "shard {index} bounds disagree with the manifest"
            )));
        }
        // Reject counts whose payload cannot be addressed before any
        // allocation happens (same hardening as the v1 path).
        checked_record_count(count, usize::MAX)?;
        Ok(ShardReader {
            file,
            path,
            meta,
            index,
            delivered: 0,
            sum: Fnv::new(),
            bytes_read: HEADER_BYTES as u64,
            verified: count == 0,
        })
    }

    /// The manifest entry this reader was opened against.
    #[inline]
    pub fn meta(&self) -> &ShardMeta {
        &self.meta
    }

    /// Records delivered so far.
    #[inline]
    pub fn records_read(&self) -> u64 {
        self.delivered
    }

    /// Bytes consumed from the shard file so far (header included).
    #[inline]
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Append up to `max` records to `out`; returns how many were read.
    /// A return of 0 with nonzero `max` means the shard is exhausted
    /// and has passed its checksum verification (`max == 0` is a no-op
    /// — verification only runs once the last record is delivered).
    pub fn read_chunk(
        &mut self,
        out: &mut Vec<Galaxy>,
        max: usize,
    ) -> Result<usize, CatalogIoError> {
        let path = self.path.clone();
        let index = self.index;
        self.read_chunk_inner(out, max)
            .map_err(|e| e.in_shard(&path, index))
    }

    fn read_chunk_inner(
        &mut self,
        out: &mut Vec<Galaxy>,
        max: usize,
    ) -> Result<usize, CatalogIoError> {
        let left = self.meta.count - self.delivered;
        if left == 0 {
            self.verify_end()?;
            return Ok(0);
        }
        let n = usize::try_from(left.min(max as u64)).expect("bounded by max, a usize");
        if n == 0 {
            return Ok(0);
        }
        out.reserve(n);
        let mut rec = [0u8; RECORD_BYTES];
        for _ in 0..n {
            read_exact_or_truncated(&mut self.file, &mut rec)?;
            self.sum.update(&rec);
            self.bytes_read += RECORD_BYTES as u64;
            let f = |i: usize| f64::from_le_bytes(rec[i * 8..i * 8 + 8].try_into().unwrap());
            out.push(Galaxy::new(Vec3::new(f(0), f(1), f(2)), f(3)));
        }
        self.delivered += n as u64;
        if self.delivered == self.meta.count {
            self.verify_end()?;
        }
        Ok(n)
    }

    fn verify_end(&mut self) -> Result<(), CatalogIoError> {
        if self.verified {
            return Ok(());
        }
        let actual = self.sum.finish();
        if actual != self.meta.records_checksum {
            return Err(CatalogIoError::Corrupt(format!(
                "shard {} record checksum mismatch: stored {:#018x}, computed {actual:#018x}",
                self.index, self.meta.records_checksum
            )));
        }
        self.verified = true;
        Ok(())
    }

    /// Read the whole shard (convenience for tests and small shards).
    pub fn read_all(mut self) -> Result<Vec<Galaxy>, CatalogIoError> {
        let mut out = Vec::new();
        while self.read_chunk(&mut out, 8192)? != 0 {}
        Ok(out)
    }
}

fn read_exact_or_truncated(r: &mut impl Read, buf: &mut [u8]) -> Result<(), CatalogIoError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CatalogIoError::Truncated
        } else {
            CatalogIoError::Io(e)
        }
    })
}

/// Read an entire shard directory back into a [`Catalog`] (shard order,
/// record order within each shard). Intended for tools and tests — the
/// distributed pipeline streams shards instead of materializing them.
pub fn read_sharded(dir: impl AsRef<Path>) -> Result<(ShardManifest, Catalog), CatalogIoError> {
    let dir = dir.as_ref();
    let manifest = ShardManifest::read(dir.join(MANIFEST_FILE))?;
    let total = checked_record_count(manifest.total_count, usize::MAX)?;
    let mut galaxies = Vec::with_capacity(total.min(1 << 20));
    for i in 0..manifest.num_shards() {
        let mut reader = ShardReader::open(dir, &manifest, i)?;
        while reader.read_chunk(&mut galaxies, 8192)? != 0 {}
    }
    let mut catalog = Catalog::new(galaxies);
    catalog.bounds = manifest.bounds;
    catalog.periodic = manifest.periodic;
    Ok((manifest, catalog))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_catalog() -> Catalog {
        let galaxies = (0..40)
            .map(|i| {
                let t = i as f64;
                Galaxy::new(
                    Vec3::new(t % 10.0, (t * 0.7) % 10.0, (t * 1.3) % 10.0),
                    1.0 + 0.1 * t,
                )
            })
            .collect();
        Catalog::new(galaxies)
    }

    fn halves_assignment(cat: &Catalog) -> ShardAssignment {
        let mid = cat.bounds.center().x;
        let (lo, hi) = cat.bounds.split(0, mid);
        ShardAssignment {
            shard_of: cat
                .galaxies
                .iter()
                .map(|g| u32::from(g.pos.x >= mid))
                .collect(),
            bounds: vec![lo, hi],
        }
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("galactos_shard_test")
            .join(format!("{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn write_read_roundtrip() {
        let cat = sample_catalog();
        let dir = tmpdir("roundtrip");
        let manifest = write_sharded(&cat, &halves_assignment(&cat), &dir).unwrap();
        assert_eq!(manifest.total_count, 40);
        assert_eq!(manifest.num_shards(), 2);
        let (back_manifest, back) = read_sharded(&dir).unwrap();
        assert_eq!(back_manifest, manifest);
        assert_eq!(back.len(), cat.len());
        assert_eq!(back.bounds, cat.bounds);
        assert_eq!(back.periodic, cat.periodic);
        // Same multiset of galaxies (order is shard-major).
        let mut got: Vec<_> = back
            .galaxies
            .iter()
            .map(|g| (g.pos.x.to_bits(), g.weight.to_bits()))
            .collect();
        let mut want: Vec<_> = cat
            .galaxies
            .iter()
            .map(|g| (g.pos.x.to_bits(), g.weight.to_bits()))
            .collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_bytes_roundtrip() {
        let cat = sample_catalog();
        let dir = tmpdir("manifest");
        let manifest = write_sharded(&cat, &halves_assignment(&cat), &dir).unwrap();
        let back = ShardManifest::from_bytes(&manifest.to_bytes()).unwrap();
        assert_eq!(back, manifest);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_record_payload_is_detected() {
        let cat = sample_catalog();
        let dir = tmpdir("corrupt_payload");
        let manifest = write_sharded(&cat, &halves_assignment(&cat), &dir).unwrap();
        let path = dir.join(ShardManifest::shard_file_name(0));
        let mut bytes = std::fs::read(&path).unwrap();
        let flip = HEADER_BYTES + 5; // inside the first record
        bytes[flip] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let mut reader = ShardReader::open(&dir, &manifest, 0).unwrap();
        let mut out = Vec::new();
        let err = loop {
            match reader.read_chunk(&mut out, 7) {
                Ok(0) => panic!("corruption not detected"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(
            matches!(err.root_cause(), CatalogIoError::Corrupt(_)),
            "{err}"
        );
        // Regression: the error names the offending shard file and index.
        let msg = err.to_string();
        assert!(
            msg.contains(&path.display().to_string()),
            "error must carry the shard path: {msg}"
        );
        assert!(msg.contains("shard 0"), "error must carry the index: {msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_shard_header_is_detected() {
        let cat = sample_catalog();
        let dir = tmpdir("corrupt_header");
        let manifest = write_sharded(&cat, &halves_assignment(&cat), &dir).unwrap();
        let path = dir.join(ShardManifest::shard_file_name(1));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0xFF; // count field
        std::fs::write(&path, &bytes).unwrap();
        let err = ShardReader::open(&dir, &manifest, 1).err().unwrap();
        assert!(
            matches!(err.root_cause(), CatalogIoError::Corrupt(_)),
            "{err}"
        );
        let msg = err.to_string();
        assert!(
            msg.contains(&path.display().to_string()) && msg.contains("shard 1"),
            "error must carry path and index: {msg}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_shard_file_is_detected() {
        let cat = sample_catalog();
        let dir = tmpdir("truncated_shard");
        let manifest = write_sharded(&cat, &halves_assignment(&cat), &dir).unwrap();
        let path = dir.join(ShardManifest::shard_file_name(0));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 12]).unwrap();
        let mut reader = ShardReader::open(&dir, &manifest, 0).unwrap();
        let mut out = Vec::new();
        let err = loop {
            match reader.read_chunk(&mut out, 1024) {
                Ok(0) => panic!("truncation not detected"),
                Ok(_) => continue,
                Err(e) => break e,
            }
        };
        assert!(
            matches!(err.root_cause(), CatalogIoError::Truncated),
            "{err}"
        );
        let msg = err.to_string();
        assert!(
            msg.contains(&path.display().to_string()),
            "truncation error must carry the shard path: {msg}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reader_tracks_bytes_and_records() {
        let cat = sample_catalog();
        let dir = tmpdir("tracking");
        let manifest = write_sharded(&cat, &halves_assignment(&cat), &dir).unwrap();
        let mut reader = ShardReader::open(&dir, &manifest, 0).unwrap();
        assert_eq!(reader.bytes_read(), HEADER_BYTES as u64);
        let mut out = Vec::new();
        while reader.read_chunk(&mut out, 3).unwrap() != 0 {}
        assert_eq!(reader.records_read(), manifest.shards[0].count);
        assert_eq!(
            reader.bytes_read(),
            HEADER_BYTES as u64 + manifest.shards[0].count * RECORD_BYTES as u64
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_sized_chunk_request_is_a_noop() {
        // `max == 0` mid-stream must not run the end-of-shard checksum
        // against a partial payload (which would report Corrupt on a
        // healthy file).
        let cat = sample_catalog();
        let dir = tmpdir("zero_chunk");
        let manifest = write_sharded(&cat, &halves_assignment(&cat), &dir).unwrap();
        let mut reader = ShardReader::open(&dir, &manifest, 0).unwrap();
        let mut out = Vec::new();
        assert_eq!(reader.read_chunk(&mut out, 0).unwrap(), 0);
        assert_eq!(reader.read_chunk(&mut out, 3).unwrap(), 3);
        assert_eq!(reader.read_chunk(&mut out, 0).unwrap(), 0);
        while reader.read_chunk(&mut out, 1024).unwrap() != 0 {}
        assert_eq!(out.len() as u64, manifest.shards[0].count);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_shards_are_valid() {
        // A shard whose region holds no galaxies must still roundtrip.
        let cat = sample_catalog();
        let dir = tmpdir("empty_shard");
        let n = cat.len();
        let assignment = ShardAssignment {
            shard_of: vec![0; n],
            bounds: vec![cat.bounds, cat.bounds],
        };
        let manifest = write_sharded(&cat, &assignment, &dir).unwrap();
        assert_eq!(manifest.shards[1].count, 0);
        let galaxies = ShardReader::open(&dir, &manifest, 1)
            .unwrap()
            .read_all()
            .unwrap();
        assert!(galaxies.is_empty());
        let (_, back) = read_sharded(&dir).unwrap();
        assert_eq!(back.len(), n);
        std::fs::remove_dir_all(&dir).ok();
    }
}
