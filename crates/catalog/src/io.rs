//! Catalog serialization: a compact binary format and CSV.
//!
//! The binary format ("GCAT") is a little-endian stream:
//!
//! ```text
//! magic   u32   0x47434154 ("GCAT")
//! version u32   1
//! count   u64
//! flags   u32   bit 0: periodic
//! box_len f64   (valid when periodic)
//! bounds  6×f64 (lo.xyz, hi.xyz)
//! records count × (x, y, z, weight) f64
//! ```
//!
//! CSV (`x,y,z,weight` with a header line) is provided for interchange
//! with external plotting/analysis tools.

use crate::galaxy::{Catalog, Galaxy};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use galactos_math::{Aabb, Vec3};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic number shared by every GCAT framing (v1 files, v2 shard files
/// and v2 shard manifests).
pub(crate) const MAGIC: u32 = 0x4743_4154;
const VERSION: u32 = 1;
/// Wire size of one galaxy record: `(x, y, z, weight)` as little-endian
/// `f64`s.
pub(crate) const RECORD_BYTES: usize = 32;

/// Errors produced by catalog (de)serialization.
#[derive(Debug)]
pub enum CatalogIoError {
    Io(io::Error),
    BadMagic(u32),
    BadVersion(u32),
    Truncated,
    /// Structurally valid framing whose contents contradict themselves
    /// (checksum mismatch, manifest/shard disagreement, …).
    Corrupt(String),
    /// Well-formed input requesting something this build cannot do
    /// (e.g. distributing a periodic sharded catalog).
    Unsupported(String),
    Parse(String),
    /// An error localized to one shard of a sharded catalog: carries the
    /// shard file path and shard index so a caller holding N shards can
    /// tell which one is bad.
    InShard {
        path: String,
        shard: usize,
        source: Box<CatalogIoError>,
    },
}

impl CatalogIoError {
    /// Wrap `self` with the shard it occurred in (idempotent: an error
    /// already carrying shard context is returned unchanged).
    pub fn in_shard(self, path: &std::path::Path, shard: usize) -> CatalogIoError {
        match self {
            already @ CatalogIoError::InShard { .. } => already,
            source => CatalogIoError::InShard {
                path: path.display().to_string(),
                shard,
                source: Box::new(source),
            },
        }
    }

    /// The underlying error, with any shard context stripped.
    pub fn root_cause(&self) -> &CatalogIoError {
        match self {
            CatalogIoError::InShard { source, .. } => source.root_cause(),
            other => other,
        }
    }
}

impl std::fmt::Display for CatalogIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogIoError::Io(e) => write!(f, "I/O error: {e}"),
            CatalogIoError::BadMagic(m) => write!(f, "bad magic 0x{m:08x}"),
            CatalogIoError::BadVersion(v) => write!(f, "unsupported version {v}"),
            CatalogIoError::Truncated => write!(f, "truncated catalog stream"),
            CatalogIoError::Corrupt(s) => write!(f, "corrupt catalog stream: {s}"),
            CatalogIoError::Unsupported(s) => write!(f, "unsupported catalog: {s}"),
            CatalogIoError::Parse(s) => write!(f, "parse error: {s}"),
            CatalogIoError::InShard {
                path,
                shard,
                source,
            } => write!(f, "shard {shard} ({path}): {source}"),
        }
    }
}

impl std::error::Error for CatalogIoError {}

impl From<io::Error> for CatalogIoError {
    fn from(e: io::Error) -> Self {
        CatalogIoError::Io(e)
    }
}

/// Encode a catalog into an in-memory byte buffer.
pub fn to_bytes(catalog: &Catalog) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + 32 * catalog.len());
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(catalog.len() as u64);
    buf.put_u32_le(u32::from(catalog.periodic.is_some()));
    buf.put_f64_le(catalog.periodic.unwrap_or(0.0));
    for v in [catalog.bounds.lo, catalog.bounds.hi] {
        buf.put_f64_le(v.x);
        buf.put_f64_le(v.y);
        buf.put_f64_le(v.z);
    }
    for g in &catalog.galaxies {
        buf.put_f64_le(g.pos.x);
        buf.put_f64_le(g.pos.y);
        buf.put_f64_le(g.pos.z);
        buf.put_f64_le(g.weight);
    }
    buf.freeze()
}

/// Decode a catalog from a byte buffer produced by [`to_bytes`].
pub fn from_bytes(mut buf: impl Buf) -> Result<Catalog, CatalogIoError> {
    if buf.remaining() < 16 {
        return Err(CatalogIoError::Truncated);
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(CatalogIoError::BadMagic(magic));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(CatalogIoError::BadVersion(version));
    }
    let count = buf.get_u64_le();
    if buf.remaining() < 4 + 8 + 48 {
        return Err(CatalogIoError::Truncated);
    }
    let flags = buf.get_u32_le();
    let box_len = buf.get_f64_le();
    let lo = Vec3::new(buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le());
    let hi = Vec3::new(buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le());
    let count = checked_record_count(count, buf.remaining())?;
    let mut galaxies = Vec::with_capacity(count);
    for _ in 0..count {
        let pos = Vec3::new(buf.get_f64_le(), buf.get_f64_le(), buf.get_f64_le());
        let weight = buf.get_f64_le();
        galaxies.push(Galaxy::new(pos, weight));
    }
    Ok(Catalog {
        galaxies,
        bounds: Aabb { lo, hi },
        periodic: if flags & 1 != 0 { Some(box_len) } else { None },
    })
}

/// Validate a header-declared record count against the bytes actually
/// available. The count is attacker-controlled: it must survive the
/// `u64 → usize` narrowing and the `× RECORD_BYTES` scaling without
/// wrapping (a wrapped product would defeat the truncation check and
/// abort in `Vec::with_capacity`), and the payload must really be
/// present.
pub(crate) fn checked_record_count(count: u64, remaining: usize) -> Result<usize, CatalogIoError> {
    let count = usize::try_from(count).map_err(|_| CatalogIoError::Truncated)?;
    let payload = count
        .checked_mul(RECORD_BYTES)
        .ok_or(CatalogIoError::Truncated)?;
    if remaining < payload {
        return Err(CatalogIoError::Truncated);
    }
    Ok(count)
}

/// Write a catalog to a file in the binary format.
pub fn write_binary(catalog: &Catalog, path: impl AsRef<Path>) -> Result<(), CatalogIoError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&to_bytes(catalog))?;
    w.flush()?;
    Ok(())
}

/// Read a catalog from a binary-format file.
pub fn read_binary(path: impl AsRef<Path>) -> Result<Catalog, CatalogIoError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    from_bytes(&bytes[..])
}

/// A parsed CSV header: case-insensitive column-name → index
/// resolution, shared by the Cartesian reader ([`read_csv`]) and the
/// sky reader ([`crate::sky::read_sky_csv`]).
///
/// A line is treated as a header when its first non-whitespace
/// character is alphabetic — the same rule both readers always used,
/// now stated once. Column names match case-insensitively and in any
/// order, so `X,Y,Z,WEIGHT` and `weight,z,y,x` both resolve.
#[derive(Clone, Debug)]
pub struct HeaderMap {
    names: Vec<String>,
}

impl HeaderMap {
    /// Parse `line` as a header. Returns `None` when the line looks
    /// like a data row (first non-whitespace character not alphabetic)
    /// so callers can fall back to positional parsing.
    pub fn parse(line: &str) -> Option<HeaderMap> {
        let trimmed = line.trim();
        if !trimmed.chars().next().is_some_and(|c| c.is_alphabetic()) {
            return None;
        }
        Some(HeaderMap {
            names: trimmed
                .split(',')
                .map(|f| f.trim().to_ascii_lowercase())
                .collect(),
        })
    }

    /// Index of the column matching any of `aliases` (give aliases in
    /// lowercase, in priority order: the first alias that names a
    /// column wins, not the first column that matches any alias).
    pub fn resolve(&self, aliases: &[&str]) -> Option<usize> {
        aliases
            .iter()
            .find_map(|a| self.names.iter().position(|n| n == a))
    }

    /// The lowercased column names, in file order.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

/// Write a catalog as CSV (`x,y,z,weight`, with header).
pub fn write_csv(catalog: &Catalog, path: impl AsRef<Path>) -> Result<(), CatalogIoError> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "x,y,z,weight")?;
    for g in &catalog.galaxies {
        writeln!(w, "{},{},{},{}", g.pos.x, g.pos.y, g.pos.z, g.weight)?;
    }
    w.flush()?;
    Ok(())
}

/// Read a catalog from CSV produced by [`write_csv`] (header optional;
/// a missing 4th column defaults the weight to 1).
///
/// When a header is present, the `x`/`y`/`z`/`weight` columns are
/// resolved by name via [`HeaderMap`] — any case, any order. A header
/// that does not name all of `x`, `y`, `z` (e.g. an export with
/// arbitrary labels) falls back to positional `x,y,z[,weight]`
/// parsing, preserving the historical behavior.
pub fn read_csv(path: impl AsRef<Path>) -> Result<Catalog, CatalogIoError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut galaxies = Vec::new();
    let mut line = String::new();
    // Positional defaults; replaced by name resolution when the header
    // names the coordinate columns.
    let (mut cx, mut cy, mut cz, mut cw) = (0usize, 1, 2, Some(3usize));
    // The header, when present, is the first *non-empty* line — leading
    // blank lines (common in hand-edited exports) must not demote it to
    // a data row.
    let mut first_content = true;
    while r.read_line(&mut line)? != 0 {
        let trimmed = line.trim();
        if !trimmed.is_empty() {
            let header = if first_content {
                HeaderMap::parse(trimmed)
            } else {
                None
            };
            first_content = false;
            match header {
                Some(h) => {
                    if let (Some(x), Some(y), Some(z)) =
                        (h.resolve(&["x"]), h.resolve(&["y"]), h.resolve(&["z"]))
                    {
                        (cx, cy, cz) = (x, y, z);
                        cw = h.resolve(&["weight", "w"]);
                    }
                }
                None => {
                    let fields: Vec<&str> = trimmed.split(',').collect();
                    if fields.len() <= cx.max(cy).max(cz) {
                        return Err(CatalogIoError::Parse(format!("bad row: {trimmed}")));
                    }
                    let parse = |s: &str| -> Result<f64, CatalogIoError> {
                        s.trim()
                            .parse::<f64>()
                            .map_err(|e| CatalogIoError::Parse(format!("{s}: {e}")))
                    };
                    let pos = Vec3::new(parse(fields[cx])?, parse(fields[cy])?, parse(fields[cz])?);
                    let weight = match cw {
                        Some(c) if fields.len() > c => parse(fields[c])?,
                        _ => 1.0,
                    };
                    galaxies.push(Galaxy::new(pos, weight));
                }
            }
        }
        line.clear();
    }
    Ok(Catalog::new(galaxies))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Catalog {
        let mut c = Catalog::new(vec![
            Galaxy::new(Vec3::new(1.0, 2.0, 3.0), 1.0),
            Galaxy::new(Vec3::new(-4.0, 5.5, 0.25), -0.5),
            Galaxy::new(Vec3::new(0.0, 0.0, 0.0), 2.0),
        ]);
        c.periodic = None;
        c
    }

    #[test]
    fn bytes_roundtrip() {
        let c = sample();
        let bytes = to_bytes(&c);
        let back = from_bytes(&bytes[..]).unwrap();
        assert_eq!(back.len(), c.len());
        assert_eq!(back.periodic, None);
        for (a, b) in back.galaxies.iter().zip(c.galaxies.iter()) {
            assert_eq!(a, b);
        }
        assert_eq!(back.bounds, c.bounds);
    }

    #[test]
    fn bytes_roundtrip_periodic() {
        let c = Catalog::new_periodic(vec![Galaxy::unit(Vec3::splat(1.0))], 8.0);
        let back = from_bytes(&to_bytes(&c)[..]).unwrap();
        assert_eq!(back.periodic, Some(8.0));
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        let c = sample();
        let bytes = to_bytes(&c);
        let mut corrupted = bytes.to_vec();
        corrupted[0] ^= 0xFF;
        assert!(matches!(
            from_bytes(&corrupted[..]),
            Err(CatalogIoError::BadMagic(_))
        ));
        assert!(matches!(
            from_bytes(&bytes[..bytes.len() - 8]),
            Err(CatalogIoError::Truncated)
        ));
        assert!(matches!(
            from_bytes(&bytes[..4]),
            Err(CatalogIoError::Truncated)
        ));
    }

    #[test]
    fn huge_header_count_is_truncated_not_abort() {
        // A corrupt header claiming u64::MAX records used to wrap the
        // `count * 32` truncation check and abort inside
        // `Vec::with_capacity`; it must surface as `Truncated`.
        for huge in [u64::MAX, u64::MAX / 32 + 1, (usize::MAX as u64 / 32) + 1] {
            let mut crafted = BytesMut::new();
            crafted.put_u32_le(MAGIC);
            crafted.put_u32_le(VERSION);
            crafted.put_u64_le(huge);
            crafted.put_u32_le(0); // flags
            crafted.put_f64_le(0.0); // box_len
            for _ in 0..6 {
                crafted.put_f64_le(0.0); // bounds
            }
            // A little trailing garbage so the header itself is intact.
            crafted.put_f64_le(1.0);
            assert!(
                matches!(from_bytes(&crafted[..]), Err(CatalogIoError::Truncated)),
                "count {huge} must be rejected as truncated"
            );
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("galactos_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cat.gcat");
        let c = sample();
        write_binary(&c, &path).unwrap();
        let back = read_binary(&path).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.galaxies[1].weight, -0.5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("galactos_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cat.csv");
        let c = sample();
        write_csv(&c, &path).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in back.galaxies.iter().zip(c.galaxies.iter()) {
            assert!((a.pos - b.pos).norm() < 1e-12);
            assert!((a.weight - b.weight).abs() < 1e-12);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_header_after_leading_blank_line() {
        // The header used to be recognized only on the literal first
        // line, so a leading blank line turned `x,y,z,weight` into a
        // `Parse` error.
        let dir = std::env::temp_dir().join("galactos_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blank_then_header.csv");
        std::fs::write(&path, "\n\nx,y,z,weight\n1.0,2.0,3.0,0.5\n").unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.galaxies[0].weight, 0.5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_map_resolves_case_insensitively() {
        let h = HeaderMap::parse("RA, Dec ,Z,WEIGHT_SYSTOT").unwrap();
        assert_eq!(h.resolve(&["ra"]), Some(0));
        assert_eq!(h.resolve(&["dec", "declination"]), Some(1));
        assert_eq!(h.resolve(&["redshift", "z"]), Some(2));
        // Alias priority order wins, not column order.
        assert_eq!(h.resolve(&["weight", "weight_systot"]), Some(3));
        assert_eq!(h.resolve(&["missing"]), None);
        // Data rows are not headers.
        assert!(HeaderMap::parse("1.0,2.0,3.0").is_none());
        assert!(HeaderMap::parse("-4.5,0,1").is_none());
    }

    #[test]
    fn csv_mixed_case_reordered_header() {
        // Named resolution: `WEIGHT,Z,Y,X` must land each value in the
        // right field even though the order and case differ from the
        // canonical `x,y,z,weight`.
        let dir = std::env::temp_dir().join("galactos_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reordered.csv");
        std::fs::write(&path, "WEIGHT,Z,Y,X\n0.5,3.0,2.0,1.0\n").unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.galaxies[0].pos, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(back.galaxies[0].weight, 0.5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_unrecognized_header_falls_back_to_positional() {
        let dir = std::env::temp_dir().join("galactos_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("odd_header.csv");
        std::fs::write(&path, "a,b,c,d\n1.0,2.0,3.0,0.25\n").unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.galaxies[0].pos, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(back.galaxies[0].weight, 0.25);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_without_weights_defaults_to_one() {
        let dir = std::env::temp_dir().join("galactos_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("noweights.csv");
        std::fs::write(&path, "1.0,2.0,3.0\n4.0,5.0,6.0\n").unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.galaxies[0].weight, 1.0);
        std::fs::remove_file(&path).ok();
    }
}
