//! Catalog diagnostics: density, separation, weight accounting.
//!
//! The paper's §2.1 argument for why classic k-d tree 3PCF algorithms
//! fail on cosmological surveys rests on two numbers: the mean galaxy
//! separation (13 Mpc/h for BOSS) versus the radial bin width (~10
//! Mpc/h). This module computes those diagnostics for any catalog.

use crate::galaxy::Catalog;

/// Summary statistics of a catalog.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CatalogStats {
    pub count: usize,
    /// Sum of weights (0 for a data-minus-randoms field).
    pub weight_sum: f64,
    /// Sum of squared weights (enters shot-noise estimates).
    pub weight_sq_sum: f64,
    /// Bounding-box volume.
    pub volume: f64,
    /// Number density `N / V`.
    pub density: f64,
    /// Mean inter-galaxy separation estimate `(V/N)^{1/3}`.
    pub mean_separation: f64,
}

impl CatalogStats {
    pub fn compute(catalog: &Catalog) -> Self {
        let count = catalog.len();
        let weight_sum = catalog.total_weight();
        let weight_sq_sum = catalog.galaxies.iter().map(|g| g.weight * g.weight).sum();
        let volume = match catalog.periodic {
            Some(l) => l * l * l,
            None => catalog.bounds.volume(),
        };
        let density = if volume > 0.0 {
            count as f64 / volume
        } else {
            f64::NAN
        };
        let mean_separation = if count > 0 && volume > 0.0 {
            (volume / count as f64).cbrt()
        } else {
            f64::NAN
        };
        CatalogStats {
            count,
            weight_sum,
            weight_sq_sum,
            volume,
            density,
            mean_separation,
        }
    }
}

/// Expected number of neighbors within `radius` for a homogeneous
/// catalog of the given density — the paper's `n·V_Rmax` factor that
/// drives the O(N²) work estimate.
pub fn expected_neighbors(density: f64, radius: f64) -> f64 {
    density * 4.0 / 3.0 * std::f64::consts::PI * radius.powi(3)
}

/// Histogram the per-galaxy weights into `nbins` uniform bins over
/// `[min, max]`; under/overflow are clamped to the edge bins.
pub fn weight_histogram(catalog: &Catalog, min: f64, max: f64, nbins: usize) -> Vec<usize> {
    assert!(nbins > 0 && max > min);
    let mut hist = vec![0usize; nbins];
    let scale = nbins as f64 / (max - min);
    for g in &catalog.galaxies {
        let bin = (((g.weight - min) * scale) as isize).clamp(0, nbins as isize - 1) as usize;
        hist[bin] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::galaxy::Galaxy;
    use crate::random::uniform_box;
    use galactos_math::Vec3;

    #[test]
    fn stats_of_uniform_box() {
        let c = uniform_box(8000, 20.0, 3);
        let s = CatalogStats::compute(&c);
        assert_eq!(s.count, 8000);
        assert_eq!(s.weight_sum, 8000.0);
        assert!((s.volume - 8000.0).abs() < 1e-9);
        assert!((s.density - 1.0).abs() < 1e-12);
        assert!((s.mean_separation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_scale_sanity() {
        // Outer Rim: 2e9 galaxies in a (3000 Mpc/h)^3 box → n ≈ 0.072,
        // and ~2.4 Mpc/h mean separation.
        let n = 1.951e9f64;
        let v = 3000.0f64.powi(3);
        let density = n / v;
        assert!((density - 0.0722).abs() < 1e-3);
        // Expected secondaries within Rmax=200 for that density:
        let neigh = expected_neighbors(density, 200.0);
        assert!((neigh / 2.42e6 - 1.0).abs() < 0.01, "{neigh}");
    }

    #[test]
    fn zero_weight_combined_field() {
        let data = Catalog::new(vec![
            Galaxy::unit(Vec3::ZERO),
            Galaxy::unit(Vec3::new(1.0, 0.0, 0.0)),
        ]);
        let randoms = Catalog::new(vec![
            Galaxy::unit(Vec3::new(0.5, 0.5, 0.0)),
            Galaxy::unit(Vec3::new(0.2, 0.8, 0.3)),
            Galaxy::unit(Vec3::new(0.7, 0.1, 0.9)),
        ]);
        let combined = Catalog::data_minus_randoms(&data, &randoms);
        let s = CatalogStats::compute(&combined);
        assert!(s.weight_sum.abs() < 1e-12);
        assert!(s.weight_sq_sum > 0.0);
    }

    #[test]
    fn weight_histogram_bins() {
        let c = Catalog::new(vec![
            Galaxy::new(Vec3::ZERO, 0.1),
            Galaxy::new(Vec3::ZERO, 0.9),
            Galaxy::new(Vec3::ZERO, 0.5),
            Galaxy::new(Vec3::ZERO, 5.0), // overflow clamps to last bin
        ]);
        let h = weight_histogram(&c, 0.0, 1.0, 2);
        assert_eq!(h, vec![1, 3]);
    }
}
