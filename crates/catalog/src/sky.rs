//! Sky-coordinate catalogs: RA/Dec/redshift ingestion for surveys.
//!
//! Real survey catalogs (the paper's BOSS target) publish galaxies as
//! angles on the sky plus a redshift, not as comoving Cartesian
//! positions. This module converts between the two through a fiducial
//! [`FiducialCosmology`]
//! and reads/writes the corresponding CSV files.
//!
//! # Conventions
//!
//! Stated once, here, for every consumer (the survey walkthroughs, the
//! survey bench bin, downstream analysis). They compose with the
//! distance conventions of [`galactos_math::cosmology`] and the
//! geometry conventions of [`crate::survey`]:
//!
//! * **Columns**: a sky CSV *must* carry a header naming `RA`, `DEC`
//!   and `Z` (any case, any order — `ra,dec,z`, `DEC,Z,RA`, … all
//!   work), resolved by the shared [`HeaderMap`].
//!   An optional weight column is recognized under the aliases in
//!   [`WEIGHT_ALIASES`] (`weight`, `radial_weight`, `weight_systot`,
//!   `wt` — the names used by public survey products and the
//!   correlcalc-style tools); absent weights default to 1.
//! * **Units**: RA and Dec are degrees, with RA ∈ [0°, 360°) and
//!   Dec ∈ [−90°, +90°]; `Z` is the observed redshift (dimensionless,
//!   ≥ 0). Positions come out in h⁻¹ Mpc, like every distance in the
//!   engine.
//! * **Frame**: the observer sits at the **origin**; `x̂` points to
//!   (RA 0°, Dec 0°), `ŷ` to (RA 90°, Dec 0°), `ẑ` to the north pole
//!   (Dec +90°):
//!
//!   ```text
//!   x = D_C(z)·cos(dec)·cos(ra)
//!   y = D_C(z)·cos(dec)·sin(ra)
//!   z = D_C(z)·sin(dec)
//!   ```
//!
//!   Downstream, a [`SurveyGeometry`](crate::survey::SurveyGeometry)
//!   over such a catalog uses `observer = Vec3::ZERO`, and the engine's
//!   radial line of sight is `LineOfSight::Radial { observer: ZERO }`.
//! * **The fiducial cosmology is part of the catalog's provenance**:
//!   two ingests with different `(Ωm, h)` produce different Cartesian
//!   catalogs. Record the cosmology next to any serialized output.

use crate::galaxy::{Catalog, Galaxy};
use crate::io::{CatalogIoError, HeaderMap};
use galactos_math::cosmology::FiducialCosmology;
use galactos_math::Vec3;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Recognized names for the optional per-object weight column, in
/// priority order (first alias present in the header wins).
pub const WEIGHT_ALIASES: &[&str] = &["weight", "radial_weight", "weight_systot", "wt"];

/// Convert sky coordinates (RA/Dec in degrees, redshift) to a comoving
/// Cartesian position in h⁻¹ Mpc, observer at the origin.
pub fn sky_to_cartesian(ra_deg: f64, dec_deg: f64, z: f64, cosmo: &FiducialCosmology) -> Vec3 {
    let r = cosmo.comoving_distance(z);
    let (ra, dec) = (ra_deg.to_radians(), dec_deg.to_radians());
    Vec3::new(
        r * dec.cos() * ra.cos(),
        r * dec.cos() * ra.sin(),
        r * dec.sin(),
    )
}

/// Invert [`sky_to_cartesian`]: `(ra_deg, dec_deg, z)` of a comoving
/// position relative to an observer at the origin.
///
/// RA is reduced to [0°, 360°). Panics on the zero vector (no
/// direction) — surveys never place a galaxy at the observer.
pub fn cartesian_to_sky(pos: Vec3, cosmo: &FiducialCosmology) -> (f64, f64, f64) {
    let r = pos.norm();
    let u = pos
        .normalized()
        .expect("cannot convert the observer's own position to sky coordinates");
    let dec = u.z.asin().to_degrees();
    let mut ra = u.y.atan2(u.x).to_degrees();
    if ra < 0.0 {
        ra += 360.0;
    }
    (ra, dec, cosmo.redshift_at_distance(r))
}

/// Read a sky-coordinate CSV (header required: RA/DEC/Z in any case and
/// order, optional weight per [`WEIGHT_ALIASES`]) into a Cartesian
/// [`Catalog`] via the fiducial cosmology.
///
/// Rows with Dec outside [−90°, +90°] or negative redshift are
/// rejected as [`CatalogIoError::Parse`]. The resulting catalog is
/// non-periodic with the observer at the origin.
pub fn read_sky_csv(
    path: impl AsRef<Path>,
    cosmo: &FiducialCosmology,
) -> Result<Catalog, CatalogIoError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut line = String::new();
    // Find the first non-empty line; it must be the header.
    let header = loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Err(CatalogIoError::Parse(
                "empty sky CSV: expected a header naming RA/DEC/Z".into(),
            ));
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        break HeaderMap::parse(trimmed).ok_or_else(|| {
            CatalogIoError::Parse(format!(
                "sky CSV must start with a header naming RA/DEC/Z, got data row: {trimmed}"
            ))
        })?;
    };
    let missing =
        |name: &str| CatalogIoError::Parse(format!("sky CSV header lacks a {name} column"));
    let cra = header
        .resolve(&["ra", "right_ascension"])
        .ok_or_else(|| missing("RA"))?;
    let cdec = header
        .resolve(&["dec", "declination"])
        .ok_or_else(|| missing("DEC"))?;
    let cz = header
        .resolve(&["z", "redshift"])
        .ok_or_else(|| missing("Z"))?;
    let cw = header.resolve(WEIGHT_ALIASES);

    let mut galaxies = Vec::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() <= cra.max(cdec).max(cz) {
            return Err(CatalogIoError::Parse(format!("bad row: {trimmed}")));
        }
        let parse = |s: &str| -> Result<f64, CatalogIoError> {
            s.trim()
                .parse::<f64>()
                .map_err(|e| CatalogIoError::Parse(format!("{s}: {e}")))
        };
        let (ra, dec, z) = (
            parse(fields[cra])?,
            parse(fields[cdec])?,
            parse(fields[cz])?,
        );
        if !(-90.0..=90.0).contains(&dec) {
            return Err(CatalogIoError::Parse(format!(
                "Dec {dec} outside [-90, 90]"
            )));
        }
        if z < 0.0 {
            return Err(CatalogIoError::Parse(format!("negative redshift {z}")));
        }
        let weight = match cw {
            Some(c) if fields.len() > c => parse(fields[c])?,
            _ => 1.0,
        };
        galaxies.push(Galaxy::new(sky_to_cartesian(ra, dec, z, cosmo), weight));
    }
    Ok(Catalog::new(galaxies))
}

/// Write a Cartesian catalog as a sky CSV (`ra,dec,z,weight` header),
/// inverting positions through the fiducial cosmology.
///
/// The inverse of [`read_sky_csv`] up to the distance→redshift
/// inversion tolerance; used by the survey bench to materialize mock
/// sky catalogs.
pub fn write_sky_csv(
    catalog: &Catalog,
    path: impl AsRef<Path>,
    cosmo: &FiducialCosmology,
) -> Result<(), CatalogIoError> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "ra,dec,z,weight")?;
    for g in &catalog.galaxies {
        let (ra, dec, z) = cartesian_to_sky(g.pos, cosmo);
        writeln!(w, "{ra},{dec},{z},{}", g.weight)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("galactos_sky_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn cardinal_directions() {
        let cosmo = FiducialCosmology::boss_fiducial();
        let z = 0.2;
        let r = cosmo.comoving_distance(z);
        let cases = [
            (0.0, 0.0, Vec3::X),
            (90.0, 0.0, Vec3::Y),
            (180.0, 0.0, -Vec3::X),
            (0.0, 90.0, Vec3::Z),
            (123.0, -90.0, -Vec3::Z),
        ];
        for (ra, dec, dir) in cases {
            let p = sky_to_cartesian(ra, dec, z, &cosmo);
            assert!(
                (p - dir * r).norm() < 1e-9,
                "ra={ra} dec={dec}: {p:?} vs {:?}",
                dir * r
            );
        }
    }

    #[test]
    fn sky_cartesian_roundtrip() {
        let cosmo = FiducialCosmology::planck();
        for (ra, dec, z) in [(12.5, -33.0, 0.08), (250.0, 41.5, 0.45), (359.9, 0.01, 1.1)] {
            let p = sky_to_cartesian(ra, dec, z, &cosmo);
            let (ra2, dec2, z2) = cartesian_to_sky(p, &cosmo);
            assert!((ra - ra2).abs() < 1e-9, "ra {ra} vs {ra2}");
            assert!((dec - dec2).abs() < 1e-9, "dec {dec} vs {dec2}");
            assert!((z - z2).abs() < 1e-8, "z {z} vs {z2}");
        }
    }

    #[test]
    fn reads_any_case_and_order() {
        let cosmo = FiducialCosmology::boss_fiducial();
        let path = tmp("caps.csv");
        std::fs::write(&path, "DEC,WEIGHT_SYSTOT,RA,Z\n0.0,2.5,90.0,0.1\n").unwrap();
        let cat = read_sky_csv(&path, &cosmo).unwrap();
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.galaxies[0].weight, 2.5);
        let r = cosmo.comoving_distance(0.1);
        assert!((cat.galaxies[0].pos - Vec3::Y * r).norm() < 1e-9);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_weight_defaults_to_one() {
        let cosmo = FiducialCosmology::boss_fiducial();
        let path = tmp("noweight.csv");
        std::fs::write(&path, "ra,dec,z\n10.0,20.0,0.3\n").unwrap();
        let cat = read_sky_csv(&path, &cosmo).unwrap();
        assert_eq!(cat.galaxies[0].weight, 1.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_headerless_and_incomplete() {
        let cosmo = FiducialCosmology::boss_fiducial();
        let headerless = tmp("headerless.csv");
        std::fs::write(&headerless, "10.0,20.0,0.3\n").unwrap();
        assert!(matches!(
            read_sky_csv(&headerless, &cosmo),
            Err(CatalogIoError::Parse(_))
        ));
        let no_dec = tmp("nodec.csv");
        std::fs::write(&no_dec, "ra,z\n10.0,0.3\n").unwrap();
        let err = read_sky_csv(&no_dec, &cosmo).unwrap_err();
        assert!(err.to_string().contains("DEC"), "{err}");
        std::fs::remove_file(&headerless).ok();
        std::fs::remove_file(&no_dec).ok();
    }

    #[test]
    fn rejects_out_of_range_rows() {
        let cosmo = FiducialCosmology::boss_fiducial();
        let bad_dec = tmp("baddec.csv");
        std::fs::write(&bad_dec, "ra,dec,z\n10.0,95.0,0.3\n").unwrap();
        assert!(read_sky_csv(&bad_dec, &cosmo).is_err());
        let bad_z = tmp("badz.csv");
        std::fs::write(&bad_z, "ra,dec,z\n10.0,5.0,-0.3\n").unwrap();
        assert!(read_sky_csv(&bad_z, &cosmo).is_err());
        std::fs::remove_file(&bad_dec).ok();
        std::fs::remove_file(&bad_z).ok();
    }

    #[test]
    fn file_roundtrip_preserves_positions() {
        let cosmo = FiducialCosmology::boss_fiducial();
        let cat = Catalog::new(vec![
            Galaxy::new(sky_to_cartesian(33.0, 12.0, 0.2, &cosmo), 1.5),
            Galaxy::new(sky_to_cartesian(200.0, -45.0, 0.6, &cosmo), 0.5),
        ]);
        let path = tmp("roundtrip.csv");
        write_sky_csv(&cat, &path, &cosmo).unwrap();
        let back = read_sky_csv(&path, &cosmo).unwrap();
        assert_eq!(back.len(), cat.len());
        for (a, b) in back.galaxies.iter().zip(cat.galaxies.iter()) {
            assert!((a.pos - b.pos).norm() < 1e-6, "{:?} vs {:?}", a.pos, b.pos);
            assert_eq!(a.weight, b.weight);
        }
        std::fs::remove_file(&path).ok();
    }
}
