//! Galaxy catalogs: containers, I/O, survey geometry and random catalogs.
//!
//! The only input the Galactos algorithm needs is "the 3-D positions of
//! the galaxies" (paper §1.3) plus per-object weights for the
//! data-minus-randoms estimator. This crate provides:
//!
//! * [`Galaxy`] / [`Catalog`] — the position+weight containers used by
//!   every other crate;
//! * [`io`] — a compact binary format (plus CSV) for catalogs, the
//!   "I/O" slice of the paper's runtime breakdown (Fig. 4);
//! * [`shard`] — GCAT v2: the same records split into spatially-aligned
//!   shard files behind a checksummed manifest, streamed in bounded
//!   memory so survey-scale catalogs never need to fit on one node;
//! * [`random`] — uniform Poisson random catalogs, both for algorithm
//!   testing (ζ must vanish on them) and as the R catalogs of the
//!   data-minus-randoms estimator (paper §6.1);
//! * [`sky`] — RA/Dec/redshift sky-coordinate ingestion through a
//!   fiducial cosmology, the form in which real survey catalogs (the
//!   paper's BOSS target) actually arrive;
//! * [`survey`] — survey geometry with angular holes and radial
//!   selection, Monte-Carlo sampled by the random catalogs exactly as
//!   the paper describes for removing the spurious geometry signal;
//! * [`stats`] — number density / mean separation diagnostics (the
//!   quantities behind the paper's sparse-survey argument in §2.1).

#![forbid(unsafe_code)]

pub mod galaxy;
pub mod io;
pub mod random;
pub mod shard;
pub mod sky;
pub mod stats;
pub mod survey;

pub use galaxy::{Catalog, Galaxy};
pub use random::uniform_box;
pub use shard::{ShardAssignment, ShardManifest, ShardMeta, ShardReader, ShardedWriter};
pub use sky::{cartesian_to_sky, read_sky_csv, sky_to_cartesian, write_sky_csv};
pub use stats::CatalogStats;
pub use survey::{Cap, SurveyGeometry};
