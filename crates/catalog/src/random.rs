//! Uniform random (Poisson) catalogs.
//!
//! Random catalogs play two roles in the 3PCF pipeline (paper §6.1): they
//! Monte-Carlo sample the survey geometry so its spurious signal can be
//! removed, and they provide null datasets on which every connected
//! multipole of the 3PCF must vanish statistically — the property our
//! statistical tests exploit.

use crate::galaxy::{Catalog, Galaxy};
use galactos_math::{Aabb, Vec3};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// `n` uniform unit-weight galaxies in the periodic cube `[0, box_len)³`.
pub fn uniform_box(n: usize, box_len: f64, seed: u64) -> Catalog {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let galaxies = (0..n)
        .map(|_| {
            Galaxy::unit(Vec3::new(
                rng.random_range(0.0..box_len),
                rng.random_range(0.0..box_len),
                rng.random_range(0.0..box_len),
            ))
        })
        .collect();
    Catalog::new_periodic(galaxies, box_len)
}

/// `n` uniform unit-weight galaxies inside an arbitrary box (non-periodic).
pub fn uniform_aabb(n: usize, bounds: &Aabb, seed: u64) -> Catalog {
    assert!(!bounds.is_empty(), "bounds must be non-empty");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let galaxies = (0..n)
        .map(|_| {
            Galaxy::unit(Vec3::new(
                rng.random_range(bounds.lo.x..=bounds.hi.x),
                rng.random_range(bounds.lo.y..=bounds.hi.y),
                rng.random_range(bounds.lo.z..=bounds.hi.z),
            ))
        })
        .collect();
    let mut c = Catalog::new(galaxies);
    c.bounds = *bounds;
    c
}

/// Poisson-sample a cube at the given number density (galaxies per unit
/// volume); the count itself is Poisson-distributed. The paper's Outer
/// Rim density is 0.071 (Mpc/h)⁻³.
pub fn poisson_box(density: f64, box_len: f64, seed: u64) -> Catalog {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mean = density * box_len * box_len * box_len;
    let n = sample_poisson(mean, &mut rng);
    let galaxies = (0..n)
        .map(|_| {
            Galaxy::unit(Vec3::new(
                rng.random_range(0.0..box_len),
                rng.random_range(0.0..box_len),
                rng.random_range(0.0..box_len),
            ))
        })
        .collect();
    Catalog::new_periodic(galaxies, box_len)
}

/// Draw from a Poisson distribution of the given mean.
///
/// Knuth's product method below `mean = 64`, Gaussian approximation with
/// continuity correction above (adequate for catalog-sized counts).
pub fn sample_poisson(mean: f64, rng: &mut impl Rng) -> usize {
    assert!(mean >= 0.0);
    if mean == 0.0 {
        return 0;
    }
    if mean < 64.0 {
        let limit = (-mean).exp();
        let mut k = 0usize;
        let mut prod: f64 = rng.random_range(0.0..1.0);
        while prod > limit {
            k += 1;
            prod *= rng.random_range(0.0..1.0f64);
        }
        k
    } else {
        // Box-Muller normal approximation N(mean, mean).
        let u1: f64 = rng.random_range(f64::EPSILON..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + mean.sqrt() * z).round().max(0.0) as usize
    }
}

/// Randomly keep each galaxy with probability `fraction` (thinning).
pub fn subsample(catalog: &Catalog, fraction: f64, seed: u64) -> Catalog {
    assert!((0.0..=1.0).contains(&fraction));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let galaxies: Vec<Galaxy> = catalog
        .galaxies
        .iter()
        .filter(|_| rng.random_range(0.0..1.0f64) < fraction)
        .copied()
        .collect();
    let mut c = Catalog::new(galaxies);
    c.periodic = catalog.periodic;
    if let Some(l) = catalog.periodic {
        c.bounds = Aabb::cube(l);
    }
    c
}

/// Deterministically shuffle catalog order (useful to destroy any
/// build-order correlation before partitioning experiments).
pub fn shuffle(catalog: &mut Catalog, seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    catalog.galaxies.shuffle(&mut rng);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_box_properties() {
        let c = uniform_box(1000, 50.0, 42);
        assert_eq!(c.len(), 1000);
        assert_eq!(c.periodic, Some(50.0));
        for g in &c.galaxies {
            assert!(g.pos.x >= 0.0 && g.pos.x < 50.0);
            assert_eq!(g.weight, 1.0);
        }
        // Mean position should be near the box center.
        let mean = c.galaxies.iter().fold(Vec3::ZERO, |acc, g| acc + g.pos) / c.len() as f64;
        assert!((mean - Vec3::splat(25.0)).norm() < 3.0, "mean {mean:?}");
    }

    #[test]
    fn determinism_by_seed() {
        let a = uniform_box(100, 10.0, 7);
        let b = uniform_box(100, 10.0, 7);
        let c = uniform_box(100, 10.0, 8);
        assert_eq!(a.galaxies[0].pos, b.galaxies[0].pos);
        assert_ne!(a.galaxies[0].pos, c.galaxies[0].pos);
    }

    #[test]
    fn poisson_sampler_mean_and_variance() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for mean in [0.5, 5.0, 30.0, 200.0] {
            let n = 4000;
            let samples: Vec<f64> = (0..n)
                .map(|_| sample_poisson(mean, &mut rng) as f64)
                .collect();
            let m: f64 = samples.iter().sum::<f64>() / n as f64;
            let v: f64 = samples.iter().map(|s| (s - m) * (s - m)).sum::<f64>() / n as f64;
            assert!(
                (m - mean).abs() < 5.0 * (mean / n as f64).sqrt() + 0.6,
                "mean {mean}: {m}"
            );
            assert!((v / mean - 1.0).abs() < 0.25, "var at mean {mean}: {v}");
        }
    }

    #[test]
    fn poisson_box_density() {
        let c = poisson_box(0.071, 30.0, 11);
        let expected = 0.071 * 30.0f64.powi(3);
        let sigma = expected.sqrt();
        assert!(
            (c.len() as f64 - expected).abs() < 5.0 * sigma,
            "{} vs {expected}",
            c.len()
        );
    }

    #[test]
    fn subsample_fraction() {
        let c = uniform_box(10_000, 10.0, 1);
        let s = subsample(&c, 0.25, 2);
        let frac = s.len() as f64 / c.len() as f64;
        assert!((frac - 0.25).abs() < 0.02, "kept {frac}");
        assert_eq!(s.periodic, Some(10.0));
    }

    #[test]
    fn uniform_aabb_respects_bounds() {
        let bounds = Aabb::new(Vec3::new(-5.0, 0.0, 10.0), Vec3::new(5.0, 1.0, 20.0));
        let c = uniform_aabb(500, &bounds, 9);
        for g in &c.galaxies {
            assert!(bounds.contains(g.pos));
        }
    }
}
