//! Galaxy and catalog containers.

use galactos_math::{Aabb, Vec3};

/// A single tracer: a 3-D comoving position (Mpc/h) and a weight.
///
/// Data objects carry positive weights (usually 1); random-catalog
/// objects carry negative weights scaled so that the combined catalog has
/// zero total weight — the `D − (N_D/N_R)·R` field whose multipoles
/// estimate the clustering of the *overdensity* (Slepian & Eisenstein
/// 2015 §3; paper §6.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Galaxy {
    pub pos: Vec3,
    pub weight: f64,
}

impl Galaxy {
    #[inline]
    pub fn new(pos: Vec3, weight: f64) -> Self {
        Galaxy { pos, weight }
    }

    /// A unit-weight galaxy.
    #[inline]
    pub fn unit(pos: Vec3) -> Self {
        Galaxy { pos, weight: 1.0 }
    }
}

/// A collection of galaxies with known spatial bounds and optional
/// periodic-box topology.
#[derive(Clone, Debug)]
pub struct Catalog {
    pub galaxies: Vec<Galaxy>,
    /// Spatial bounds (derived from the data unless declared).
    pub bounds: Aabb,
    /// `Some(L)` when the catalog lives in a periodic cube `[0, L)³`
    /// (simulation snapshots); `None` for survey data.
    pub periodic: Option<f64>,
}

impl Catalog {
    /// Catalog with bounds computed from the data.
    pub fn new(galaxies: Vec<Galaxy>) -> Self {
        let mut bounds = Aabb::empty();
        for g in &galaxies {
            bounds.expand(g.pos);
        }
        Catalog {
            galaxies,
            bounds,
            periodic: None,
        }
    }

    /// Catalog declared to live in the periodic cube `[0, box_len)³`.
    ///
    /// Panics if any galaxy lies outside the cube.
    pub fn new_periodic(galaxies: Vec<Galaxy>, box_len: f64) -> Self {
        let cube = Aabb::cube(box_len);
        for g in &galaxies {
            assert!(
                cube.contains(g.pos),
                "galaxy at {:?} outside periodic box of length {box_len}",
                g.pos
            );
        }
        Catalog {
            galaxies,
            bounds: cube,
            periodic: Some(box_len),
        }
    }

    /// Catalog of unit-weight galaxies at the given positions.
    pub fn from_positions(positions: Vec<Vec3>) -> Self {
        Catalog::new(positions.into_iter().map(Galaxy::unit).collect())
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.galaxies.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.galaxies.is_empty()
    }

    /// Positions only, in catalog order.
    pub fn positions(&self) -> Vec<Vec3> {
        self.galaxies.iter().map(|g| g.pos).collect()
    }

    /// Sum of weights.
    pub fn total_weight(&self) -> f64 {
        self.galaxies.iter().map(|g| g.weight).sum()
    }

    /// Recompute bounds from data (call after mutating positions).
    pub fn recompute_bounds(&mut self) {
        let mut bounds = Aabb::empty();
        for g in &self.galaxies {
            bounds.expand(g.pos);
        }
        self.bounds = bounds;
    }

    /// A new catalog containing the galaxies at the given indices.
    pub fn subset(&self, indices: &[usize]) -> Catalog {
        let galaxies = indices.iter().map(|&i| self.galaxies[i]).collect();
        let mut c = Catalog::new(galaxies);
        c.periodic = self.periodic;
        c
    }

    /// Combine a data catalog and a random catalog into the
    /// data-minus-randoms field: data weights unchanged, random weights
    /// rescaled to `−W_D / W_R` each (so the total weight is zero).
    ///
    /// Panics if the random catalog has zero total weight.
    pub fn data_minus_randoms(data: &Catalog, randoms: &Catalog) -> Catalog {
        let wd = data.total_weight();
        let wr = randoms.total_weight();
        assert!(wr != 0.0, "random catalog must have non-zero total weight");
        let scale = -wd / wr;
        let mut galaxies = Vec::with_capacity(data.len() + randoms.len());
        galaxies.extend_from_slice(&data.galaxies);
        galaxies.extend(
            randoms
                .galaxies
                .iter()
                .map(|g| Galaxy::new(g.pos, g.weight * scale)),
        );
        let mut c = Catalog::new(galaxies);
        c.periodic = data.periodic;
        c
    }

    /// Translate every galaxy by `offset` (bounds follow).
    pub fn translate(&mut self, offset: Vec3) {
        for g in &mut self.galaxies {
            g.pos += offset;
        }
        self.bounds = Aabb::new(self.bounds.lo + offset, self.bounds.hi + offset);
    }

    /// Extract the sub-box `region` as a new (non-periodic) catalog,
    /// used to carve weak-scaling datasets out of a big box (Table 1).
    pub fn extract_region(&self, region: &Aabb) -> Catalog {
        let galaxies: Vec<Galaxy> = self
            .galaxies
            .iter()
            .filter(|g| region.contains(g.pos))
            .copied()
            .collect();
        Catalog::new(galaxies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Catalog {
        Catalog::new(vec![
            Galaxy::unit(Vec3::new(0.0, 0.0, 0.0)),
            Galaxy::new(Vec3::new(1.0, 2.0, 3.0), 2.0),
            Galaxy::unit(Vec3::new(-1.0, 4.0, 0.5)),
        ])
    }

    #[test]
    fn bounds_derived_from_data() {
        let c = sample();
        assert_eq!(c.bounds.lo, Vec3::new(-1.0, 0.0, 0.0));
        assert_eq!(c.bounds.hi, Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(c.len(), 3);
        assert_eq!(c.total_weight(), 4.0);
    }

    #[test]
    fn periodic_validation() {
        let ok = Catalog::new_periodic(vec![Galaxy::unit(Vec3::splat(5.0))], 10.0);
        assert_eq!(ok.periodic, Some(10.0));
    }

    #[test]
    #[should_panic(expected = "outside periodic box")]
    fn periodic_rejects_outside_points() {
        Catalog::new_periodic(vec![Galaxy::unit(Vec3::splat(15.0))], 10.0);
    }

    #[test]
    fn data_minus_randoms_has_zero_weight() {
        let data = sample();
        let randoms = Catalog::from_positions(vec![
            Vec3::new(0.5, 0.5, 0.5),
            Vec3::new(0.2, 3.0, 1.0),
            Vec3::new(0.9, 1.0, 2.0),
            Vec3::new(0.0, 2.0, 2.5),
        ]);
        let combined = Catalog::data_minus_randoms(&data, &randoms);
        assert_eq!(combined.len(), 7);
        assert!(combined.total_weight().abs() < 1e-12);
        // data weights unchanged
        assert_eq!(combined.galaxies[1].weight, 2.0);
        // random weights negative
        assert!(combined.galaxies[4].weight < 0.0);
    }

    #[test]
    fn subset_and_translate() {
        let c = sample();
        let s = c.subset(&[0, 2]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.galaxies[1].pos, Vec3::new(-1.0, 4.0, 0.5));
        let mut t = sample();
        t.translate(Vec3::splat(10.0));
        assert_eq!(t.galaxies[0].pos, Vec3::splat(10.0));
        assert_eq!(t.bounds.lo, Vec3::new(9.0, 10.0, 10.0));
    }

    #[test]
    fn extract_region_filters() {
        let c = sample();
        let r = c.extract_region(&Aabb::new(Vec3::ZERO, Vec3::splat(5.0)));
        assert_eq!(r.len(), 2); // the galaxy at x=-1 is excluded
    }
}
