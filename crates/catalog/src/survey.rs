//! Survey geometry: angular holes and radial selection.
//!
//! "Astronomical surveys of the sky have many blind spots. For example,
//! they cannot see through the dense center of the Milky Way, or identify
//! galaxies behind the glare of a bright star. Further, the distance to
//! which they can observe galaxies varies over the sky" (paper §6.1).
//! This module models exactly those effects: an observer, a radial shell
//! with a completeness profile, and a set of angular exclusion caps. The
//! random catalogs that Monte-Carlo sample this geometry are produced by
//! [`SurveyGeometry::sample_randoms`].
//!
//! # Conventions
//!
//! Stated once, here, for every consumer (the sky reader in
//! [`crate::sky`], the edge-corrected `SurveyCompute` entry point in
//! `galactos-core`, the survey walkthroughs and bench bins):
//!
//! * **Frame**: the geometry lives in the same comoving h⁻¹ Mpc
//!   Cartesian frame as the catalogs it masks. For sky-ingested
//!   catalogs ([`crate::sky`]) the observer is the **origin**; an
//!   engine run over such a footprint must use the *same* observer in
//!   its radial line of sight (`LineOfSight::Radial { observer }`) or
//!   the multipole frame and the mask frame silently disagree.
//! * **Holes are angular**: a [`Cap`] excludes *directions* seen from
//!   the observer, independent of radius — the model of a bright star
//!   or the galactic plane. Radial selection is separate, via the
//!   piecewise-linear completeness table.
//! * **Randoms are unit-weight** and carry no clustering: they sample
//!   footprint × completeness only, which is exactly what the
//!   edge-correction window multipoles `f_ℓ` must measure. Size them
//!   as a `randfact` multiple of the data catalog
//!   ([`SurveyGeometry::sample_randoms_for`]); `randfact = 2–3` is the
//!   usual survey practice — shot noise from R falls as `1/randfact`
//!   while compute cost in the combined D−R run grows linearly.
//! * **Determinism**: equal `(geometry, n, seed)` always produce the
//!   identical random catalog (a seeded ChaCha stream; no global RNG),
//!   so recorded benchmarks and tests are exactly reproducible.

use crate::galaxy::{Catalog, Galaxy};
use galactos_math::{Aabb, Vec3};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A spherical cap on the sky, used as an exclusion zone ("hole").
#[derive(Clone, Copy, Debug)]
pub struct Cap {
    /// Unit direction of the cap center (from the observer).
    pub dir: Vec3,
    /// Cosine of the angular radius; a direction `u` is inside the cap
    /// when `u · dir >= cos_radius`.
    pub cos_radius: f64,
}

impl Cap {
    /// Cap centred on `dir` with angular radius `radius_rad`.
    pub fn new(dir: Vec3, radius_rad: f64) -> Self {
        Cap {
            dir: dir.normalized().expect("cap direction must be non-zero"),
            cos_radius: radius_rad.cos(),
        }
    }

    #[inline]
    pub fn contains_direction(&self, u: Vec3) -> bool {
        u.dot(self.dir) >= self.cos_radius
    }

    /// Fraction of the full sky covered by this cap.
    pub fn sky_fraction(&self) -> f64 {
        0.5 * (1.0 - self.cos_radius)
    }
}

/// A survey footprint: radial shell + holes + radial completeness.
#[derive(Clone, Debug)]
pub struct SurveyGeometry {
    /// Observer position (origin of the lines of sight).
    pub observer: Vec3,
    /// Inner and outer comoving radius of the survey shell.
    pub r_min: f64,
    pub r_max: f64,
    /// Angular exclusion caps (bright stars, galactic plane, …).
    pub holes: Vec<Cap>,
    /// Piecewise-linear radial completeness `(r, fraction)` — must be
    /// sorted by `r`; completeness outside the table clamps to the edge
    /// values. Empty table means completeness 1 everywhere.
    pub radial_completeness: Vec<(f64, f64)>,
}

impl SurveyGeometry {
    /// A full-sky shell with no holes and unit completeness.
    pub fn full_shell(observer: Vec3, r_min: f64, r_max: f64) -> Self {
        assert!(r_min >= 0.0 && r_max > r_min);
        SurveyGeometry {
            observer,
            r_min,
            r_max,
            holes: Vec::new(),
            radial_completeness: Vec::new(),
        }
    }

    /// Completeness (selection probability) at radius `r`.
    pub fn completeness(&self, r: f64) -> f64 {
        let table = &self.radial_completeness;
        if table.is_empty() {
            return 1.0;
        }
        if r <= table[0].0 {
            return table[0].1;
        }
        if r >= table[table.len() - 1].0 {
            return table[table.len() - 1].1;
        }
        for w in table.windows(2) {
            let (r0, f0) = w[0];
            let (r1, f1) = w[1];
            if r >= r0 && r <= r1 {
                let t = (r - r0) / (r1 - r0);
                return f0 + t * (f1 - f0);
            }
        }
        1.0
    }

    /// Is `p` inside the geometric footprint (ignoring completeness)?
    pub fn in_footprint(&self, p: Vec3) -> bool {
        let rel = p - self.observer;
        let r = rel.norm();
        if r < self.r_min || r > self.r_max {
            return false;
        }
        match rel.normalized() {
            None => false,
            Some(u) => !self.holes.iter().any(|c| c.contains_direction(u)),
        }
    }

    /// Apply the survey mask to a catalog: galaxies outside the footprint
    /// are dropped; galaxies inside are kept with probability equal to
    /// the radial completeness (deterministic under `seed`).
    pub fn apply(&self, catalog: &Catalog, seed: u64) -> Catalog {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let galaxies: Vec<Galaxy> = catalog
            .galaxies
            .iter()
            .filter(|g| {
                if !self.in_footprint(g.pos) {
                    return false;
                }
                let r = (g.pos - self.observer).norm();
                rng.random_range(0.0..1.0f64) < self.completeness(r)
            })
            .copied()
            .collect();
        Catalog::new(galaxies)
    }

    /// Bounding box of the survey shell.
    pub fn bounding_box(&self) -> Aabb {
        Aabb::new(
            self.observer - Vec3::splat(self.r_max),
            self.observer + Vec3::splat(self.r_max),
        )
    }

    /// Monte-Carlo sample `n` random points with the survey's geometry
    /// and completeness — the "random catalogs" of the estimator
    /// (paper §6.1). Rejection-samples the bounding box.
    pub fn sample_randoms(&self, n: usize, seed: u64) -> Catalog {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let bb = self.bounding_box();
        let mut galaxies = Vec::with_capacity(n);
        let mut guard = 0usize;
        let max_draws = n.saturating_mul(10_000).max(100_000);
        while galaxies.len() < n {
            guard += 1;
            assert!(
                guard <= max_draws,
                "rejection sampling failed to converge — degenerate survey geometry?"
            );
            let p = Vec3::new(
                rng.random_range(bb.lo.x..=bb.hi.x),
                rng.random_range(bb.lo.y..=bb.hi.y),
                rng.random_range(bb.lo.z..=bb.hi.z),
            );
            if !self.in_footprint(p) {
                continue;
            }
            let r = (p - self.observer).norm();
            if rng.random_range(0.0..1.0f64) < self.completeness(r) {
                galaxies.push(Galaxy::unit(p));
            }
        }
        Catalog::new(galaxies)
    }

    /// Sample a random catalog sized at `randfact ×` the data catalog —
    /// the conventional way to size the R catalog of the
    /// data-minus-randoms estimator (correlcalc's `randfact`, default
    /// 2 there; 2–3 is typical survey practice).
    ///
    /// Equivalent to `sample_randoms(randfact * data.len(), seed)`;
    /// panics on an empty data catalog or `randfact = 0`.
    pub fn sample_randoms_for(&self, data: &Catalog, randfact: usize, seed: u64) -> Catalog {
        assert!(randfact >= 1, "randfact must be at least 1");
        assert!(
            !data.is_empty(),
            "cannot size a random catalog against an empty data catalog"
        );
        self.sample_randoms(randfact * data.len(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::uniform_box;

    #[test]
    fn cap_geometry() {
        let cap = Cap::new(Vec3::Z, 0.5);
        assert!(cap.contains_direction(Vec3::Z));
        assert!(!cap.contains_direction(Vec3::X));
        assert!(!cap.contains_direction(-Vec3::Z));
        // ~6.7% of the sky for a 30° cap
        let cap30 = Cap::new(Vec3::X, 30f64.to_radians());
        assert!((cap30.sky_fraction() - 0.0669873).abs() < 1e-6);
    }

    #[test]
    fn footprint_shell() {
        let s = SurveyGeometry::full_shell(Vec3::ZERO, 10.0, 50.0);
        assert!(s.in_footprint(Vec3::new(30.0, 0.0, 0.0)));
        assert!(!s.in_footprint(Vec3::new(5.0, 0.0, 0.0)));
        assert!(!s.in_footprint(Vec3::new(60.0, 0.0, 0.0)));
        assert!(!s.in_footprint(Vec3::ZERO)); // degenerate direction
    }

    #[test]
    fn holes_exclude_directions() {
        let mut s = SurveyGeometry::full_shell(Vec3::ZERO, 1.0, 100.0);
        s.holes.push(Cap::new(Vec3::Z, 0.3));
        assert!(!s.in_footprint(Vec3::new(0.0, 0.0, 50.0)));
        assert!(s.in_footprint(Vec3::new(50.0, 0.0, 0.0)));
    }

    #[test]
    fn completeness_interpolation() {
        let mut s = SurveyGeometry::full_shell(Vec3::ZERO, 0.0, 100.0);
        s.radial_completeness = vec![(10.0, 1.0), (50.0, 0.5), (100.0, 0.0)];
        assert_eq!(s.completeness(5.0), 1.0);
        assert!((s.completeness(30.0) - 0.75).abs() < 1e-12);
        assert!((s.completeness(75.0) - 0.25).abs() < 1e-12);
        assert_eq!(s.completeness(150.0), 0.0);
        let t = SurveyGeometry::full_shell(Vec3::ZERO, 0.0, 10.0);
        assert_eq!(t.completeness(3.0), 1.0);
    }

    #[test]
    fn apply_filters_catalog() {
        let c = uniform_box(5000, 100.0, 5);
        let mut s = SurveyGeometry::full_shell(Vec3::splat(50.0), 5.0, 40.0);
        s.holes.push(Cap::new(Vec3::Z, 0.5));
        let masked = s.apply(&c, 1);
        assert!(!masked.is_empty());
        assert!(masked.len() < c.len());
        for g in &masked.galaxies {
            assert!(s.in_footprint(g.pos));
        }
    }

    #[test]
    fn randoms_follow_geometry() {
        let mut s = SurveyGeometry::full_shell(Vec3::ZERO, 20.0, 60.0);
        s.holes.push(Cap::new(Vec3::X, 0.6));
        let randoms = s.sample_randoms(2000, 17);
        assert_eq!(randoms.len(), 2000);
        for g in &randoms.galaxies {
            assert!(s.in_footprint(g.pos));
        }
        // Radial distribution should grow like r² within the shell:
        // compare counts in two equal-width radial bins.
        let count = |lo: f64, hi: f64| {
            randoms
                .galaxies
                .iter()
                .filter(|g| {
                    let r = g.pos.norm();
                    r >= lo && r < hi
                })
                .count() as f64
        };
        let inner = count(20.0, 40.0);
        let outer = count(40.0, 60.0);
        // Volume ratio = (60³-40³)/(40³-20³) = 152/56 ≈ 2.71
        let ratio = outer / inner;
        assert!((ratio - 2.71).abs() < 0.6, "ratio {ratio}");
    }

    #[test]
    fn randoms_respect_completeness() {
        let mut s = SurveyGeometry::full_shell(Vec3::ZERO, 10.0, 30.0);
        s.radial_completeness = vec![(10.0, 1.0), (30.0, 0.1)];
        let randoms = s.sample_randoms(3000, 23);
        // Expected suppressed outer counts relative to uniform geometry.
        let inner = randoms
            .galaxies
            .iter()
            .filter(|g| g.pos.norm() < 20.0)
            .count() as f64;
        let outer = randoms
            .galaxies
            .iter()
            .filter(|g| g.pos.norm() >= 20.0)
            .count() as f64;
        // Without completeness, outer/inner ≈ (27000-8000)/(8000-1000) = 2.71;
        // with the ramp the outer bin is strongly suppressed.
        assert!(outer / inner < 1.5, "outer/inner = {}", outer / inner);
    }
}
