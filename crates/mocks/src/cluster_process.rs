//! Neyman–Scott cluster process.
//!
//! Galaxy-like small-scale clustering from first principles: Poisson
//! "parent" halos, each dressed with a Poisson number of "children"
//! scattered with an isotropic Gaussian profile. The process is strongly
//! non-Gaussian, so its connected 3-point function is non-zero and
//! positive at the cluster scale — the cheapest dataset on which the
//! 3PCF pipeline must produce signal rather than noise.

use galactos_catalog::random::sample_poisson;
use galactos_catalog::{Catalog, Galaxy};
use galactos_math::Vec3;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Parameters of the Neyman–Scott process.
#[derive(Clone, Copy, Debug)]
pub struct NeymanScott {
    /// Mean number of parent clusters per unit volume.
    pub parent_density: f64,
    /// Mean children per parent.
    pub mean_children: f64,
    /// Gaussian scatter (1-D rms) of children around their parent.
    pub sigma: f64,
}

impl NeymanScott {
    /// Generate a periodic catalog in `[0, box_len)³`.
    pub fn generate(&self, box_len: f64, seed: u64) -> Catalog {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let volume = box_len.powi(3);
        let n_parents = sample_poisson(self.parent_density * volume, &mut rng);
        let mut galaxies = Vec::new();
        for _ in 0..n_parents {
            let parent = Vec3::new(
                rng.random_range(0.0..box_len),
                rng.random_range(0.0..box_len),
                rng.random_range(0.0..box_len),
            );
            let n_children = sample_poisson(self.mean_children, &mut rng);
            for _ in 0..n_children {
                let offset = Vec3::new(
                    gauss(&mut rng) * self.sigma,
                    gauss(&mut rng) * self.sigma,
                    gauss(&mut rng) * self.sigma,
                );
                let p = parent + offset;
                galaxies.push(Galaxy::unit(Vec3::new(
                    p.x.rem_euclid(box_len),
                    p.y.rem_euclid(box_len),
                    p.z.rem_euclid(box_len),
                )));
            }
        }
        Catalog::new_periodic(galaxies, box_len)
    }

    /// Expected galaxy number density of the process.
    pub fn expected_density(&self) -> f64 {
        self.parent_density * self.mean_children
    }
}

fn gauss(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_matches_expectation() {
        let ns = NeymanScott {
            parent_density: 0.002,
            mean_children: 20.0,
            sigma: 2.0,
        };
        let cat = ns.generate(50.0, 3);
        let expected = ns.expected_density() * 50.0f64.powi(3);
        let got = cat.len() as f64;
        assert!(
            (got - expected).abs() < 6.0 * expected.sqrt() + 30.0 * 20.0,
            "{got} vs {expected}"
        );
    }

    #[test]
    fn children_cluster_around_parents() {
        let ns = NeymanScott {
            parent_density: 0.0005,
            mean_children: 30.0,
            sigma: 1.5,
        };
        let cat = ns.generate(60.0, 7);
        // Close-pair excess relative to uniform with the same count.
        let uni = galactos_catalog::uniform_box(cat.len(), 60.0, 91);
        let close = |c: &Catalog, r: f64| -> usize {
            let l = c.periodic.unwrap();
            let mut count = 0;
            for i in 0..c.len() {
                for j in (i + 1)..c.len() {
                    if c.galaxies[i]
                        .pos
                        .periodic_delta(c.galaxies[j].pos, l)
                        .norm()
                        < r
                    {
                        count += 1;
                    }
                }
            }
            count
        };
        let c_ns = close(&cat, 3.0);
        let c_uni = close(&uni, 3.0).max(1);
        assert!(
            c_ns as f64 > 5.0 * c_uni as f64,
            "clustering too weak: {c_ns} vs {c_uni}"
        );
    }

    #[test]
    fn positions_inside_box_and_deterministic() {
        let ns = NeymanScott {
            parent_density: 0.001,
            mean_children: 10.0,
            sigma: 5.0,
        };
        let a = ns.generate(30.0, 5);
        let b = ns.generate(30.0, 5);
        assert_eq!(a.len(), b.len());
        for g in &a.galaxies {
            assert!(g.pos.x >= 0.0 && g.pos.x < 30.0);
            assert!(g.pos.y >= 0.0 && g.pos.y < 30.0);
            assert!(g.pos.z >= 0.0 && g.pos.z < 30.0);
        }
    }
}
