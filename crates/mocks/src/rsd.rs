//! Redshift-space distortions (RSD).
//!
//! "Galaxies' own ('peculiar') velocities ... affect our inference of
//! their positions along the line of sight from their redshifts" (paper
//! §1.1). In the plane-parallel approximation the observed position is
//!
//! ```text
//! s = x + f · ψ_z(x) · ẑ    (Kaiser squashing, linear theory)
//! ```
//!
//! plus an optional incoherent "finger-of-god" dispersion. These
//! distortions are what give the 3PCF non-zero anisotropic multipoles
//! (`m ≠ 0` coefficients) — the signal the Galactos algorithm was built
//! to measure.

use crate::grf::GaussianField;
use galactos_catalog::Catalog;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// RSD model parameters.
#[derive(Clone, Copy, Debug)]
pub struct RsdParams {
    /// Linear growth rate `f ≈ Ω_m^0.55` (≈ 0.78 at z = 0.5); scales the
    /// coherent Kaiser displacement.
    pub growth_rate: f64,
    /// rms of the incoherent small-scale velocity dispersion, in the
    /// same length units as the box (0 disables fingers-of-god).
    pub sigma_v: f64,
    /// Seed for the finger-of-god draws.
    pub seed: u64,
}

impl RsdParams {
    /// Pure Kaiser distortion with growth rate `f`.
    pub fn kaiser(growth_rate: f64) -> Self {
        RsdParams {
            growth_rate,
            sigma_v: 0.0,
            seed: 0,
        }
    }
}

/// Apply plane-parallel RSD along the z-axis: every galaxy's z moves by
/// `f·ψ_z` (CIC-interpolated from the mesh) plus optional Gaussian
/// dispersion, wrapped periodically.
pub fn apply_plane_parallel(
    catalog: &mut Catalog,
    field: &GaussianField,
    displacement: &[Vec<f64>; 3],
    params: RsdParams,
) {
    let box_len = catalog
        .periodic
        .expect("plane-parallel RSD requires a periodic catalog");
    let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
    for g in &mut catalog.galaxies {
        let psi_z = field.interpolate_cic(&displacement[2], g.pos);
        let mut dz = params.growth_rate * psi_z;
        if params.sigma_v > 0.0 {
            let u1: f64 = rng.random_range(f64::EPSILON..1.0);
            let u2: f64 = rng.random_range(0.0..1.0);
            let gauss = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            dz += params.sigma_v * gauss;
        }
        g.pos.z = (g.pos.z + dz).rem_euclid(box_len);
    }
}

/// Quantify line-of-sight anisotropy of a periodic catalog using the
/// pair-orientation variable `μ = |Δz| / r`: among all pairs with
/// separation below `r_scale`, the ratio of counts with `μ > 0.9`
/// (line-of-sight oriented) to counts with `μ < 0.1` (transverse).
/// For an isotropic distribution μ is uniform on [0, 1], so the ratio
/// is ≈ 1. Compression of structure along the line of sight (Kaiser
/// squashing) depletes high-μ pairs (ratio < 1); fingers-of-god
/// elongation enhances them (ratio > 1). O(N²) — for test-sized
/// catalogs.
pub fn anisotropy_ratio(catalog: &Catalog, r_scale: f64) -> f64 {
    let l = catalog.periodic.expect("periodic catalog");
    let mut along = 0usize;
    let mut transverse = 0usize;
    let n = catalog.len();
    for i in 0..n {
        for j in (i + 1)..n {
            let d = catalog.galaxies[i]
                .pos
                .periodic_delta(catalog.galaxies[j].pos, l);
            let r = d.norm();
            if r == 0.0 || r >= r_scale {
                continue;
            }
            let mu = d.z.abs() / r;
            if mu > 0.9 {
                along += 1;
            } else if mu < 0.1 {
                transverse += 1;
            }
        }
    }
    if transverse == 0 {
        return f64::INFINITY;
    }
    along as f64 / transverse as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pk::PowerLawSpectrum;

    #[test]
    fn kaiser_displacement_is_coherent_and_periodic() {
        let p = PowerLawSpectrum {
            amplitude: 800.0,
            index: -2.0,
        };
        let (field, psi) = GaussianField::generate_with_displacement(&p, 16, 100.0, 3);
        let mut cat = galactos_catalog::uniform_box(500, 100.0, 5);
        let before = cat.positions();
        apply_plane_parallel(&mut cat, &field, &psi, RsdParams::kaiser(0.7));
        let mut total_shift = 0.0;
        for (b, g) in before.iter().zip(cat.galaxies.iter()) {
            assert_eq!(b.x, g.pos.x);
            assert_eq!(b.y, g.pos.y);
            assert!(g.pos.z >= 0.0 && g.pos.z < 100.0, "z wrapped into box");
            total_shift += (b.z - g.pos.z).abs().min(100.0 - (b.z - g.pos.z).abs());
        }
        assert!(total_shift > 0.0, "no displacement applied");
    }

    #[test]
    fn finger_of_god_adds_dispersion() {
        let p = PowerLawSpectrum {
            amplitude: 1.0,
            index: -1.0,
        };
        let (field, psi) = GaussianField::generate_with_displacement(&p, 8, 50.0, 1);
        let mut a = galactos_catalog::uniform_box(400, 50.0, 9);
        let mut b = a.clone();
        apply_plane_parallel(
            &mut a,
            &field,
            &psi,
            RsdParams {
                growth_rate: 0.0,
                sigma_v: 0.0,
                seed: 2,
            },
        );
        apply_plane_parallel(
            &mut b,
            &field,
            &psi,
            RsdParams {
                growth_rate: 0.0,
                sigma_v: 2.0,
                seed: 2,
            },
        );
        // a unchanged (f=0, σ_v=0); b scattered.
        let moved = a
            .galaxies
            .iter()
            .zip(b.galaxies.iter())
            .filter(|(x, y)| (x.pos.z - y.pos.z).abs() > 1e-9)
            .count();
        assert!(moved > 350, "FoG moved only {moved}");
    }

    #[test]
    fn anisotropy_ratio_is_one_for_uniform() {
        let cat = galactos_catalog::uniform_box(1500, 60.0, 21);
        let ratio = anisotropy_ratio(&cat, 10.0);
        assert!((ratio - 1.0).abs() < 0.35, "uniform ratio {ratio}");
    }

    #[test]
    fn elongation_along_z_detected() {
        // Finger-of-god-like elongation: each galaxy becomes a short
        // line-of-sight streak. High-μ pairs become overrepresented →
        // ratio > 1.
        let mut cat = galactos_catalog::uniform_box(400, 60.0, 23);
        let n = cat.len();
        let mut stretched = cat.galaxies.clone();
        for g in cat.galaxies.iter() {
            for dz in [2.0, 4.0] {
                let mut h = *g;
                h.pos.z = (h.pos.z + dz).rem_euclid(60.0);
                stretched.push(h);
            }
        }
        cat.galaxies = stretched;
        let ratio = anisotropy_ratio(&cat, 10.0);
        assert!(ratio > 1.5, "elongated ratio {ratio} (n={n})");
    }
}
