//! Synthetic galaxy catalogs standing in for the Outer Rim simulation.
//!
//! The paper ran on 2×10⁹ halos from the Outer Rim N-body simulation.
//! Per the reproduction ground rules we substitute catalogs that are
//! generated from scratch but exercise the same code paths and carry the
//! same statistical features the science output depends on:
//!
//! * [`fft`] — re-export of [`galactos_math::fft`], the in-house
//!   radix-2 complex FFT (1-D and 3-D, rayon-parallel over mesh lines;
//!   no external FFT dependency). It started life here for the GRF
//!   generator and was promoted into the math crate when the gridded
//!   a_ℓm estimator became a second consumer; the re-export keeps every
//!   `galactos_mocks::fft::…` path working.
//! * [`pk`] — model power spectra: power laws and a phenomenological
//!   BAO-wiggle spectrum (smooth transfer shape × damped sinusoid), the
//!   knob that puts the paper's Figure 1 BAO features into our mocks.
//! * [`grf`] — Gaussian random fields on a periodic mesh with a target
//!   power spectrum, plus the linear-theory displacement/velocity field.
//! * [`lognormal`] — lognormal galaxy mocks (the standard cheap mock of
//!   large-scale structure): exponentiate the GRF, Poisson-sample.
//! * [`rsd`] — redshift-space distortions: line-of-sight displacement by
//!   the velocity field (Kaiser squashing) plus optional finger-of-god
//!   dispersion; this is what makes the *anisotropic* 3PCF non-trivial.
//! * [`cluster_process`] — Neyman–Scott cluster process: strongly
//!   non-Gaussian small-scale clustering with an analytic density, used
//!   by correctness tests (3PCF must detect it) and benchmarks.
//! * [`soneira_peebles`] — the classic hierarchical fractal model.
//! * [`scaled`] — density-matched datasets for the weak-scaling series
//!   (reproduces the construction of the paper's Table 1).

#![forbid(unsafe_code)]

pub mod cluster_process;
pub mod grf;
pub mod lognormal;
pub mod pk;
pub mod rsd;
pub mod scaled;
pub mod soneira_peebles;
pub mod zeldovich;

pub use galactos_math::fft;
pub use galactos_math::fft::Mesh3;
pub use grf::GaussianField;
pub use lognormal::LognormalMock;
pub use pk::{BaoSpectrum, PowerLawSpectrum, PowerSpectrum};
pub use scaled::{paper_table1, scaled_dataset, ScaledDataset};
