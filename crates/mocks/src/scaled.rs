//! Density-matched scaled datasets (the paper's Table 1).
//!
//! "In order to capture the 'true' performance behavior of the algorithm
//! on smaller problem sets for weak scaling measurements, we constructed
//! problem sets with the same number density as the full Outer Rim
//! dataset (roughly 0.071 galaxies [Mpc/h]⁻³)" — §5.2. This module
//! reproduces that construction: given a node count and per-node galaxy
//! budget, it computes the box length that holds the galaxies at the
//! fiducial density, and generates the catalog.

use crate::cluster_process::NeymanScott;
use galactos_catalog::random::poisson_box;
use galactos_catalog::Catalog;

/// The Outer Rim number density in galaxies per (Mpc/h)³. The paper
/// quotes "roughly 0.071"; the Table 1 row geometry (225,000 galaxies
/// per node at the listed box lengths) implies 0.0726, which we use so
/// the regenerated table matches the printed one.
pub const OUTER_RIM_DENSITY: f64 = 0.0726;

/// Galaxies assigned per node in the paper's full-system run.
pub const GALAXIES_PER_NODE: f64 = 225_000.0;

/// One row of a weak-scaling dataset table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScaledDataset {
    pub nodes: usize,
    pub galaxies: f64,
    pub box_len: f64,
}

/// Construct the dataset for `nodes` ranks at `galaxies_per_node` each,
/// holding `density` fixed: `L = (N / n̄)^{1/3}`.
pub fn scaled_dataset(nodes: usize, galaxies_per_node: f64, density: f64) -> ScaledDataset {
    let galaxies = nodes as f64 * galaxies_per_node;
    let box_len = (galaxies / density).cbrt();
    ScaledDataset {
        nodes,
        galaxies,
        box_len,
    }
}

/// The paper's Table 1, regenerated from the construction rule (rather
/// than hard-coded): node counts 128…8192 plus the full 9636-node row.
pub fn paper_table1() -> Vec<ScaledDataset> {
    let mut rows: Vec<ScaledDataset> = [128usize, 256, 512, 1024, 2048, 4096, 8192]
        .iter()
        .map(|&nodes| scaled_dataset(nodes, GALAXIES_PER_NODE, OUTER_RIM_DENSITY))
        .collect();
    // The full-system row: 1.951e9 galaxies in the 3000 Mpc/h Outer Rim box.
    rows.push(ScaledDataset {
        nodes: 9636,
        galaxies: 1.951e9,
        box_len: 3000.0,
    });
    rows
}

/// What point process to use when realizing a scaled dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MockKind {
    /// Uniform Poisson (pure performance testing).
    Poisson,
    /// Neyman–Scott clusters (realistic density inhomogeneity, which is
    /// what produces the paper's pair-count load imbalance).
    Clustered,
}

/// Realize a laptop-scale version of a dataset row: same number density,
/// geometry shrunk by `scale_divisor` in galaxy count.
pub fn generate_scaled_catalog(
    ds: &ScaledDataset,
    scale_divisor: f64,
    kind: MockKind,
    seed: u64,
) -> Catalog {
    assert!(scale_divisor >= 1.0);
    let n = (ds.galaxies / scale_divisor).max(1.0);
    let density = ds.galaxies / ds.box_len.powi(3);
    let box_len = (n / density).cbrt();
    match kind {
        MockKind::Poisson => poisson_box(density, box_len, seed),
        MockKind::Clustered => {
            // ~15 galaxies per cluster, cluster scale 3 Mpc/h.
            let mean_children = 15.0;
            NeymanScott {
                parent_density: density / mean_children,
                mean_children,
                sigma: 3.0,
            }
            .generate(box_len, seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_rows() {
        // Paper Table 1 box lengths, Mpc/h.
        let expected = [
            (128, 2.880e7, 734.5),
            (256, 5.760e7, 925.8),
            (512, 1.152e8, 1166.9),
            (1024, 2.304e8, 1470.9),
            (2048, 4.608e8, 1853.3),
            (4096, 9.216e8, 2334.7),
            (8192, 1.843e9, 2934.4),
        ];
        let rows = paper_table1();
        for (row, &(nodes, galaxies, box_len)) in rows.iter().zip(expected.iter()) {
            assert_eq!(row.nodes, nodes);
            assert!(
                (row.galaxies / galaxies - 1.0).abs() < 2e-3,
                "nodes {nodes}: {} vs {galaxies}",
                row.galaxies
            );
            assert!(
                (row.box_len / box_len - 1.0).abs() < 2e-3,
                "nodes {nodes}: {} vs {box_len}",
                row.box_len
            );
        }
        // Full-system row.
        assert_eq!(rows[7].nodes, 9636);
        assert_eq!(rows[7].box_len, 3000.0);
    }

    #[test]
    fn density_is_constant_across_rows() {
        for row in paper_table1().iter().take(7) {
            let density = row.galaxies / row.box_len.powi(3);
            assert!(
                (density / OUTER_RIM_DENSITY - 1.0).abs() < 5e-3,
                "density {density}"
            );
        }
    }

    #[test]
    fn generated_catalog_matches_density() {
        let ds = scaled_dataset(4, 500.0, OUTER_RIM_DENSITY);
        let cat = generate_scaled_catalog(&ds, 1.0, MockKind::Poisson, 5);
        let volume = cat.periodic.unwrap().powi(3);
        let density = cat.len() as f64 / volume;
        assert!(
            (density / OUTER_RIM_DENSITY - 1.0).abs() < 0.15,
            "density {density}"
        );
    }

    #[test]
    fn clustered_catalog_has_same_mean_density() {
        let ds = scaled_dataset(2, 2000.0, OUTER_RIM_DENSITY);
        let cat = generate_scaled_catalog(&ds, 1.0, MockKind::Clustered, 7);
        let volume = cat.periodic.unwrap().powi(3);
        let density = cat.len() as f64 / volume;
        assert!(
            (density / OUTER_RIM_DENSITY - 1.0).abs() < 0.25,
            "density {density}"
        );
    }

    #[test]
    fn scale_divisor_shrinks_box_not_density() {
        let ds = scaled_dataset(8, 10_000.0, 0.05);
        let full = generate_scaled_catalog(&ds, 20.0, MockKind::Poisson, 1);
        let density = full.len() as f64 / full.periodic.unwrap().powi(3);
        assert!((density / 0.05 - 1.0).abs() < 0.2, "density {density}");
        assert!(full.len() < 5000);
    }
}
