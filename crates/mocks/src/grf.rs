//! Gaussian random fields on a periodic mesh.
//!
//! Standard spectral synthesis: draw unit white noise in real space,
//! transform, scale each mode by `√(P(k)·N³/V)` so the *measured* power
//! of the result matches the target spectrum, transform back. The same
//! machinery produces the linear-theory (Zel'dovich) displacement field
//! `ψ_k = i k̂/k · δ_k / k`, whose line-of-sight component drives the
//! redshift-space distortions that make the anisotropic 3PCF signal.

use crate::fft::{Direction, Mesh3};
use crate::pk::PowerSpectrum;
use galactos_math::{Complex64, Vec3};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A realized Gaussian density field δ(x) on an `n³` periodic mesh.
#[derive(Clone, Debug)]
pub struct GaussianField {
    n: usize,
    box_len: f64,
    delta: Vec<f64>,
}

impl GaussianField {
    /// Synthesize a field with the target spectrum.
    pub fn generate(spectrum: &dyn PowerSpectrum, n: usize, box_len: f64, seed: u64) -> Self {
        let mut mesh = Self::noise_k_space(n, seed);
        Self::apply_transfer(&mut mesh, spectrum, n, box_len);
        mesh.fft3(Direction::Inverse);
        debug_assert!(mesh.max_imag() < 1e-8, "imag {}", mesh.max_imag());
        GaussianField {
            n,
            box_len,
            delta: mesh.to_real(),
        }
    }

    /// Synthesize the field together with the three components of the
    /// Zel'dovich displacement `ψ` (satisfying `∇·ψ = −δ`).
    pub fn generate_with_displacement(
        spectrum: &dyn PowerSpectrum,
        n: usize,
        box_len: f64,
        seed: u64,
    ) -> (Self, [Vec<f64>; 3]) {
        let mut delta_k = Self::noise_k_space(n, seed);
        Self::apply_transfer(&mut delta_k, spectrum, n, box_len);

        // ψ_a(k) = i k_a / k² · δ(k)
        let kf = 2.0 * std::f64::consts::PI / box_len;
        let mut psi = Vec::with_capacity(3);
        for axis in 0..3 {
            let mut m = delta_k.clone();
            for i in 0..n {
                let ki = kf * signed_mode(i, n) as f64;
                for j in 0..n {
                    let kj = kf * signed_mode(j, n) as f64;
                    for k in 0..n {
                        let kk = kf * signed_mode(k, n) as f64;
                        let k2 = ki * ki + kj * kj + kk * kk;
                        let idx = m.index(i, j, k);
                        if k2 == 0.0 {
                            m.data_mut()[idx] = Complex64::ZERO;
                        } else {
                            let ka = [ki, kj, kk][axis];
                            let v = m.data()[idx];
                            m.data_mut()[idx] = Complex64::I * v * (ka / k2);
                        }
                    }
                }
            }
            m.fft3(Direction::Inverse);
            psi.push(m.to_real());
        }
        delta_k.fft3(Direction::Inverse);
        let field = GaussianField {
            n,
            box_len,
            delta: delta_k.to_real(),
        };
        let psi: [Vec<f64>; 3] = psi.try_into().unwrap();
        (field, psi)
    }

    /// White Gaussian noise transformed to k-space (Hermitian because the
    /// real-space input is real).
    fn noise_k_space(n: usize, seed: u64) -> Mesh3 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let total = n * n * n;
        let mut values = Vec::with_capacity(total);
        // Box–Muller pairs.
        while values.len() < total {
            let u1: f64 = rng.random_range(f64::EPSILON..1.0);
            let u2: f64 = rng.random_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let (s, c) = (2.0 * std::f64::consts::PI * u2).sin_cos();
            values.push(r * c);
            if values.len() < total {
                values.push(r * s);
            }
        }
        let mut mesh = Mesh3::from_real(n, &values);
        mesh.fft3(Direction::Forward);
        mesh
    }

    /// Scale k-space white noise by `√(P(k) N³ / V)`; zero the DC mode.
    fn apply_transfer(mesh: &mut Mesh3, spectrum: &dyn PowerSpectrum, n: usize, box_len: f64) {
        let kf = 2.0 * std::f64::consts::PI / box_len;
        let volume = box_len.powi(3);
        let norm = (n * n * n) as f64 / volume;
        for i in 0..n {
            let ki = kf * signed_mode(i, n) as f64;
            for j in 0..n {
                let kj = kf * signed_mode(j, n) as f64;
                for k in 0..n {
                    let kk = kf * signed_mode(k, n) as f64;
                    let kmag = (ki * ki + kj * kj + kk * kk).sqrt();
                    let idx = mesh.index(i, j, k);
                    if kmag == 0.0 {
                        mesh.data_mut()[idx] = Complex64::ZERO;
                    } else {
                        let s = (spectrum.power(kmag) * norm).sqrt();
                        let v = mesh.data()[idx];
                        mesh.data_mut()[idx] = v * s;
                    }
                }
            }
        }
    }

    #[inline]
    pub fn side(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn box_len(&self) -> f64 {
        self.box_len
    }

    #[inline]
    pub fn delta(&self) -> &[f64] {
        &self.delta
    }

    /// Mean of δ (≈ 0 by construction).
    pub fn mean(&self) -> f64 {
        self.delta.iter().sum::<f64>() / self.delta.len() as f64
    }

    /// Standard deviation of δ on the mesh.
    pub fn sigma(&self) -> f64 {
        let m = self.mean();
        (self.delta.iter().map(|&d| (d - m) * (d - m)).sum::<f64>() / self.delta.len() as f64)
            .sqrt()
    }

    /// Nearest-grid-point sample of the field at a position.
    pub fn value_at(&self, pos: Vec3) -> f64 {
        let cell = self.box_len / self.n as f64;
        let wrap = |v: f64| -> usize {
            let idx = (v / cell).floor() as i64;
            idx.rem_euclid(self.n as i64) as usize
        };
        let (i, j, k) = (wrap(pos.x), wrap(pos.y), wrap(pos.z));
        self.delta[(i * self.n + j) * self.n + k]
    }

    /// Cloud-in-cell (trilinear, periodic) sample of a mesh-sampled
    /// scalar field `values` (must have `n³` entries) at `pos`.
    pub fn interpolate_cic(&self, values: &[f64], pos: Vec3) -> f64 {
        assert_eq!(values.len(), self.n * self.n * self.n);
        let n = self.n as i64;
        let cell = self.box_len / self.n as f64;
        // Cell centers sit at (i + 0.5) * cell.
        let gx = pos.x / cell - 0.5;
        let gy = pos.y / cell - 0.5;
        let gz = pos.z / cell - 0.5;
        let (i0, fx) = (gx.floor() as i64, gx - gx.floor());
        let (j0, fy) = (gy.floor() as i64, gy - gy.floor());
        let (k0, fz) = (gz.floor() as i64, gz - gz.floor());
        let mut acc = 0.0;
        for (di, wi) in [(0i64, 1.0 - fx), (1, fx)] {
            let i = (i0 + di).rem_euclid(n) as usize;
            for (dj, wj) in [(0i64, 1.0 - fy), (1, fy)] {
                let j = (j0 + dj).rem_euclid(n) as usize;
                for (dk, wk) in [(0i64, 1.0 - fz), (1, fz)] {
                    let k = (k0 + dk).rem_euclid(n) as usize;
                    acc += wi * wj * wk * values[(i * self.n + j) * self.n + k];
                }
            }
        }
        acc
    }

    /// Measure the isotropically binned power spectrum of the realized
    /// field: returns `(k_center, P(k), mode count)` per bin.
    pub fn measure_power(&self, nbins: usize) -> Vec<(f64, f64, usize)> {
        let n = self.n;
        let mut mesh = Mesh3::from_real(n, &self.delta);
        mesh.fft3(Direction::Forward);
        let kf = 2.0 * std::f64::consts::PI / self.box_len;
        let k_nyquist = kf * (n as f64) / 2.0;
        let volume = self.box_len.powi(3);
        let n6 = ((n * n * n) as f64).powi(2);
        let mut power = vec![0.0f64; nbins];
        let mut ksum = vec![0.0f64; nbins];
        let mut count = vec![0usize; nbins];
        for i in 0..n {
            let ki = kf * signed_mode(i, n) as f64;
            for j in 0..n {
                let kj = kf * signed_mode(j, n) as f64;
                for k in 0..n {
                    let kk = kf * signed_mode(k, n) as f64;
                    let kmag = (ki * ki + kj * kj + kk * kk).sqrt();
                    if kmag == 0.0 || kmag >= k_nyquist {
                        continue;
                    }
                    let bin = ((kmag / k_nyquist) * nbins as f64) as usize;
                    let p = mesh.get(i, j, k).norm_sq() * volume / n6;
                    power[bin] += p;
                    ksum[bin] += kmag;
                    count[bin] += 1;
                }
            }
        }
        (0..nbins)
            .filter(|&b| count[b] > 0)
            .map(|b| {
                (
                    ksum[b] / count[b] as f64,
                    power[b] / count[b] as f64,
                    count[b],
                )
            })
            .collect()
    }
}

/// Map a mesh index to its signed frequency (re-export of
/// [`galactos_math::fft::signed_mode`], which moved with the FFT).
pub use galactos_math::fft::signed_mode;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pk::{PowerLawSpectrum, PowerSpectrum};

    #[test]
    fn signed_modes() {
        assert_eq!(signed_mode(0, 8), 0);
        assert_eq!(signed_mode(3, 8), 3);
        assert_eq!(signed_mode(4, 8), 4);
        assert_eq!(signed_mode(5, 8), -3);
        assert_eq!(signed_mode(7, 8), -1);
    }

    #[test]
    fn field_is_deterministic_and_zero_mean() {
        let p = PowerLawSpectrum {
            amplitude: 100.0,
            index: -1.0,
        };
        let a = GaussianField::generate(&p, 16, 100.0, 5);
        let b = GaussianField::generate(&p, 16, 100.0, 5);
        assert_eq!(a.delta()[0], b.delta()[0]);
        assert!(a.mean().abs() < 1e-10, "mean {}", a.mean());
        assert!(a.sigma() > 0.0);
    }

    #[test]
    fn measured_power_matches_input() {
        // The realized spectrum must track the target within sample
        // variance (bins hold many modes at high k).
        let p = PowerLawSpectrum {
            amplitude: 500.0,
            index: -1.5,
        };
        let f = GaussianField::generate(&p, 32, 200.0, 11);
        let measured = f.measure_power(8);
        assert!(measured.len() >= 6);
        let mut checked = 0;
        for &(k, pk, nmodes) in &measured {
            if nmodes < 50 {
                continue; // skip noisy low-k bins
            }
            let target = p.power(k);
            let rel = (pk / target - 1.0).abs();
            // Sample variance per bin ~ sqrt(2/nmodes); allow 5 sigma +
            // binning bias slack.
            let tol = 5.0 * (2.0 / nmodes as f64).sqrt() + 0.25;
            assert!(rel < tol, "k={k}: measured {pk} vs {target} (rel {rel})");
            checked += 1;
        }
        assert!(checked >= 4, "too few populated bins");
    }

    /// A band-limited spectrum (Gaussian cutoff far below Nyquist) so
    /// that finite differences converge on the mesh.
    struct SmoothSpectrum {
        kc: f64,
    }
    impl PowerSpectrum for SmoothSpectrum {
        fn power(&self, k: f64) -> f64 {
            1000.0 * (-(k / self.kc).powi(2)).exp()
        }
    }

    #[test]
    fn displacement_divergence_is_minus_delta() {
        // ∇·ψ = −δ: check with central finite differences on the mesh.
        // Use a band-limited field — finite differences are only accurate
        // when the field has little power near the Nyquist frequency.
        let n = 16usize;
        let box_len = 100.0;
        let k_nyquist = std::f64::consts::PI * n as f64 / box_len;
        let p = SmoothSpectrum {
            kc: 0.15 * k_nyquist,
        };
        let (field, psi) = GaussianField::generate_with_displacement(&p, n, box_len, 3);
        let cell = box_len / n as f64;
        let idx = |i: usize, j: usize, k: usize| (i * n + j) * n + k;
        let mut worst: f64 = 0.0;
        let mut scale: f64 = 0.0;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let ip = (i + 1) % n;
                    let im = (i + n - 1) % n;
                    let jp = (j + 1) % n;
                    let jm = (j + n - 1) % n;
                    let kp = (k + 1) % n;
                    let km = (k + n - 1) % n;
                    let div = (psi[0][idx(ip, j, k)] - psi[0][idx(im, j, k)]
                        + psi[1][idx(i, jp, k)]
                        - psi[1][idx(i, jm, k)]
                        + psi[2][idx(i, j, kp)]
                        - psi[2][idx(i, j, km)])
                        / (2.0 * cell);
                    let want = -field.delta()[idx(i, j, k)];
                    worst = worst.max((div - want).abs());
                    scale = scale.max(want.abs());
                }
            }
        }
        // Central differences are 2nd order; the band limit keeps the
        // residual well under 10% of the field scale.
        assert!(
            worst < 0.1 * scale,
            "divergence error {worst} vs scale {scale}"
        );
    }

    #[test]
    fn cic_interpolation_reproduces_constant_and_is_periodic() {
        let p = PowerLawSpectrum {
            amplitude: 1.0,
            index: -1.0,
        };
        let f = GaussianField::generate(&p, 8, 10.0, 1);
        let constant = vec![3.5; 8 * 8 * 8];
        for pos in [
            Vec3::new(0.1, 5.0, 9.9),
            Vec3::new(4.2, 0.0, 2.0),
            Vec3::new(9.99, 9.99, 9.99),
        ] {
            assert!((f.interpolate_cic(&constant, pos) - 3.5).abs() < 1e-12);
        }
        // Periodicity: sampling at x and x + L gives the same value.
        let vals: Vec<f64> = f.delta().to_vec();
        let a = f.interpolate_cic(&vals, Vec3::new(1.0, 2.0, 3.0));
        let b = f.interpolate_cic(&vals, Vec3::new(11.0, 2.0, 3.0));
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn value_at_wraps() {
        let p = PowerLawSpectrum {
            amplitude: 1.0,
            index: -1.0,
        };
        let f = GaussianField::generate(&p, 8, 10.0, 2);
        let a = f.value_at(Vec3::new(0.5, 0.5, 0.5));
        let b = f.value_at(Vec3::new(10.5, 0.5, 0.5));
        assert_eq!(a, b);
    }
}
