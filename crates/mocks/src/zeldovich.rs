//! Zel'dovich-approximation mocks.
//!
//! First-order Lagrangian perturbation theory: particles start on a
//! uniform (jittered) lattice and move by the displacement field
//! `ψ(q)` of the Gaussian density realization, `x = q + D·ψ(q)`. Unlike
//! the lognormal transform this builds *dynamically* evolved structure —
//! caustics, walls and filaments — giving a third independent clustered
//! process for pipeline validation (and the same machinery real mock
//! pipelines use as a first pass).

use crate::grf::GaussianField;
use crate::pk::PowerSpectrum;
use galactos_catalog::{Catalog, Galaxy};
use galactos_math::Vec3;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Parameters of a Zel'dovich mock.
#[derive(Clone, Copy, Debug)]
pub struct ZeldovichParams {
    /// Mesh side (power of two).
    pub mesh_n: usize,
    /// Box length.
    pub box_len: f64,
    /// Number of particles (lattice is the cube root, rounded up, then
    /// thinned back down).
    pub n_particles: usize,
    /// Linear growth factor multiplying the displacement (1 = the raw
    /// realization; larger = more evolved, more shell crossing).
    pub growth: f64,
    /// Sub-cell jitter amplitude as a fraction of the lattice spacing
    /// (breaks lattice artifacts in the correlation function).
    pub jitter: f64,
}

/// Generate a Zel'dovich-displaced catalog from `spectrum`.
pub fn generate(spectrum: &dyn PowerSpectrum, params: ZeldovichParams, seed: u64) -> Catalog {
    assert!(params.growth >= 0.0);
    assert!((0.0..=1.0).contains(&params.jitter));
    let (field, psi) =
        GaussianField::generate_with_displacement(spectrum, params.mesh_n, params.box_len, seed);
    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(0xC0FFEE));

    // Lattice side holding at least n_particles.
    let side = (params.n_particles as f64).cbrt().ceil() as usize;
    let spacing = params.box_len / side as f64;
    let mut galaxies = Vec::with_capacity(side * side * side);
    for i in 0..side {
        for j in 0..side {
            for k in 0..side {
                let q = Vec3::new(
                    (i as f64 + 0.5 + params.jitter * rng.random_range(-0.5..0.5)) * spacing,
                    (j as f64 + 0.5 + params.jitter * rng.random_range(-0.5..0.5)) * spacing,
                    (k as f64 + 0.5 + params.jitter * rng.random_range(-0.5..0.5)) * spacing,
                );
                let disp = Vec3::new(
                    field.interpolate_cic(&psi[0], q),
                    field.interpolate_cic(&psi[1], q),
                    field.interpolate_cic(&psi[2], q),
                );
                let x = q + disp * params.growth;
                galaxies.push(Galaxy::unit(Vec3::new(
                    x.x.rem_euclid(params.box_len),
                    x.y.rem_euclid(params.box_len),
                    x.z.rem_euclid(params.box_len),
                )));
            }
        }
    }
    // Thin to the requested count deterministically.
    galaxies.shuffle(&mut rng);
    galaxies.truncate(params.n_particles);
    Catalog::new_periodic(galaxies, params.box_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pk::PowerLawSpectrum;

    fn params(n: usize) -> ZeldovichParams {
        ZeldovichParams {
            mesh_n: 16,
            box_len: 60.0,
            n_particles: n,
            growth: 1.0,
            jitter: 1.0,
        }
    }

    #[test]
    fn count_and_bounds() {
        let p = PowerLawSpectrum {
            amplitude: 20.0,
            index: -1.5,
        };
        let cat = generate(&p, params(1000), 3);
        assert_eq!(cat.len(), 1000);
        assert_eq!(cat.periodic, Some(60.0));
        for g in &cat.galaxies {
            assert!(g.pos.x >= 0.0 && g.pos.x < 60.0);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let p = PowerLawSpectrum {
            amplitude: 20.0,
            index: -1.5,
        };
        let a = generate(&p, params(500), 7);
        let b = generate(&p, params(500), 7);
        assert_eq!(a.galaxies[17].pos, b.galaxies[17].pos);
    }

    #[test]
    fn displacement_creates_clustering() {
        // Displaced lattice must show a close-pair excess over the
        // undisplaced (growth = 0) lattice.
        let p = PowerLawSpectrum {
            amplitude: 400.0,
            index: -2.0,
        };
        let mut with = params(1200);
        with.growth = 1.0;
        let mut without = params(1200);
        without.growth = 0.0;
        let moved = generate(&p, with, 5);
        let still = generate(&p, without, 5);
        let close = |c: &Catalog, r: f64| -> usize {
            let l = c.periodic.unwrap();
            let mut n = 0;
            for i in 0..c.len() {
                for j in (i + 1)..c.len() {
                    if c.galaxies[i]
                        .pos
                        .periodic_delta(c.galaxies[j].pos, l)
                        .norm()
                        < r
                    {
                        n += 1;
                    }
                }
            }
            n
        };
        let c_moved = close(&moved, 2.5);
        let c_still = close(&still, 2.5).max(1);
        assert!(
            c_moved as f64 > 1.5 * c_still as f64,
            "no Zel'dovich clustering: {c_moved} vs {c_still}"
        );
    }
}
