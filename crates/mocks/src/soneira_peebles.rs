//! Soneira–Peebles hierarchical clustering model.
//!
//! The classic analytic fractal model of galaxy clustering (Soneira &
//! Peebles 1978): each level-0 sphere of radius `r0` spawns `eta`
//! level-1 spheres of radius `r0/lambda` centred inside it, recursively
//! for `levels` generations; galaxies sit at the centres of the deepest
//! spheres. The result has a power-law correlation function with slope
//! controlled by `(eta, lambda)` — a second, independent clustered
//! point process for pipeline validation.

use galactos_catalog::{Catalog, Galaxy};
use galactos_math::Vec3;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Parameters of the hierarchical model.
#[derive(Clone, Copy, Debug)]
pub struct SoneiraPeebles {
    /// Number of top-level clusters.
    pub n_clusters: usize,
    /// Branching factor per level.
    pub eta: usize,
    /// Radius shrink factor per level (> 1).
    pub lambda: f64,
    /// Top-level sphere radius.
    pub r0: f64,
    /// Recursion depth (levels ≥ 1); galaxy count = n_clusters · eta^levels.
    pub levels: usize,
}

impl SoneiraPeebles {
    pub fn expected_count(&self) -> usize {
        self.n_clusters * self.eta.pow(self.levels as u32)
    }

    /// Generate a periodic catalog in `[0, box_len)³`.
    pub fn generate(&self, box_len: f64, seed: u64) -> Catalog {
        assert!(self.lambda > 1.0, "lambda must exceed 1");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut galaxies = Vec::with_capacity(self.expected_count());
        for _ in 0..self.n_clusters {
            let center = Vec3::new(
                rng.random_range(0.0..box_len),
                rng.random_range(0.0..box_len),
                rng.random_range(0.0..box_len),
            );
            self.recurse(
                center,
                self.r0,
                self.levels,
                box_len,
                &mut rng,
                &mut galaxies,
            );
        }
        Catalog::new_periodic(galaxies, box_len)
    }

    fn recurse(
        &self,
        center: Vec3,
        radius: f64,
        levels_left: usize,
        box_len: f64,
        rng: &mut ChaCha8Rng,
        out: &mut Vec<Galaxy>,
    ) {
        if levels_left == 0 {
            out.push(Galaxy::unit(Vec3::new(
                center.x.rem_euclid(box_len),
                center.y.rem_euclid(box_len),
                center.z.rem_euclid(box_len),
            )));
            return;
        }
        for _ in 0..self.eta {
            let child = center + uniform_in_sphere(rng) * radius;
            self.recurse(
                child,
                radius / self.lambda,
                levels_left - 1,
                box_len,
                rng,
                out,
            );
        }
    }
}

/// A uniform draw from the unit ball (rejection sampling).
fn uniform_in_sphere(rng: &mut impl Rng) -> Vec3 {
    loop {
        let v = Vec3::new(
            rng.random_range(-1.0..1.0),
            rng.random_range(-1.0..1.0),
            rng.random_range(-1.0..1.0),
        );
        if v.norm_sq() <= 1.0 {
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_is_exact() {
        let sp = SoneiraPeebles {
            n_clusters: 4,
            eta: 3,
            lambda: 1.9,
            r0: 10.0,
            levels: 4,
        };
        let cat = sp.generate(100.0, 3);
        assert_eq!(cat.len(), 4 * 81);
        assert_eq!(sp.expected_count(), 324);
    }

    #[test]
    fn hierarchical_clustering_present() {
        let sp = SoneiraPeebles {
            n_clusters: 6,
            eta: 4,
            lambda: 2.2,
            r0: 12.0,
            levels: 3,
        };
        let cat = sp.generate(120.0, 9);
        let uni = galactos_catalog::uniform_box(cat.len(), 120.0, 31);
        let close = |c: &Catalog, r: f64| -> usize {
            let l = c.periodic.unwrap();
            let mut n = 0;
            for i in 0..c.len() {
                for j in (i + 1)..c.len() {
                    if c.galaxies[i]
                        .pos
                        .periodic_delta(c.galaxies[j].pos, l)
                        .norm()
                        < r
                    {
                        n += 1;
                    }
                }
            }
            n
        };
        assert!(close(&cat, 3.0) > 5 * close(&uni, 3.0).max(1));
    }

    #[test]
    fn deterministic() {
        let sp = SoneiraPeebles {
            n_clusters: 2,
            eta: 2,
            lambda: 2.0,
            r0: 5.0,
            levels: 2,
        };
        let a = sp.generate(50.0, 1);
        let b = sp.generate(50.0, 1);
        assert_eq!(a.galaxies[3].pos, b.galaxies[3].pos);
    }

    #[test]
    #[should_panic(expected = "lambda must exceed 1")]
    fn rejects_bad_lambda() {
        let sp = SoneiraPeebles {
            n_clusters: 1,
            eta: 2,
            lambda: 0.5,
            r0: 5.0,
            levels: 1,
        };
        sp.generate(10.0, 1);
    }
}
