//! Model power spectra.
//!
//! The 3PCF's scientific payload in the paper's Figure 1 is the BAO
//! feature — a preferred separation of ~100 Mpc/h imprinted on the
//! galaxy field. We model it phenomenologically: a smooth broken-power-
//! law transfer shape times a Silk-damped sinusoid. The exact transfer
//! function details (Eisenstein & Hu 1998) are irrelevant for exercising
//! the 3PCF pipeline; what matters is a realistic turnover, a BAO bump
//! at a controllable scale, and the ability to switch the wiggles off
//! for a no-BAO control sample.

/// A power spectrum `P(k)` in (Mpc/h)³ as a function of `k` in h/Mpc.
pub trait PowerSpectrum: Send + Sync {
    fn power(&self, k: f64) -> f64;

    /// The real-space correlation function `ξ(r) = (1/2π²)∫ dk k² P(k)
    /// j₀(kr)`, by direct quadrature with a smooth high-k cutoff.
    /// Used by tests that compare measured clustering against the input.
    fn correlation(&self, r: f64, kmax: f64, nk: usize) -> f64 {
        let dk = kmax / nk as f64;
        let mut acc = 0.0;
        for i in 0..nk {
            let k = (i as f64 + 0.5) * dk;
            let x = k * r;
            let j0 = if x.abs() < 1e-8 { 1.0 } else { x.sin() / x };
            // Gaussian taper suppresses ringing from the hard cutoff.
            let taper = (-(k / (0.6 * kmax)).powi(2)).exp();
            acc += k * k * self.power(k) * j0 * taper * dk;
        }
        acc / (2.0 * std::f64::consts::PI * std::f64::consts::PI)
    }
}

/// `P(k) = amplitude · k^index` — scale-free clustering.
#[derive(Clone, Copy, Debug)]
pub struct PowerLawSpectrum {
    pub amplitude: f64,
    pub index: f64,
}

impl PowerSpectrum for PowerLawSpectrum {
    fn power(&self, k: f64) -> f64 {
        if k <= 0.0 {
            return 0.0;
        }
        self.amplitude * k.powf(self.index)
    }
}

/// Phenomenological ΛCDM-like spectrum with optional BAO wiggles:
///
/// ```text
/// P(k) = A · (k/k_eq)^ns / (1 + (k/k_eq)²)² · W(k)
/// W(k) = 1 + a_bao · sin(k · r_bao) · exp(−(k/k_silk)²)   (wiggles on)
/// ```
///
/// The smooth part peaks near `k_eq` (matter-radiation equality) and
/// falls as `k^{ns−4}` at high k, qualitatively matching ΛCDM; `r_bao`
/// sets the acoustic scale (~105 Mpc/h comoving).
#[derive(Clone, Copy, Debug)]
pub struct BaoSpectrum {
    /// Overall amplitude A (sets σ₈-like normalization).
    pub amplitude: f64,
    /// Spectral index ns (≈ 0.96).
    pub ns: f64,
    /// Turnover scale in h/Mpc (≈ 0.016).
    pub k_eq: f64,
    /// Acoustic scale in Mpc/h (≈ 105).
    pub r_bao: f64,
    /// Wiggle amplitude (≈ 0.05–0.1); 0 disables BAO.
    pub a_bao: f64,
    /// Silk damping scale in h/Mpc (≈ 0.15).
    pub k_silk: f64,
}

impl BaoSpectrum {
    /// Fiducial parameters tuned to give ~10% rms density fluctuations
    /// on 8 Mpc/h scales when sampled on typical mock meshes.
    pub fn fiducial() -> Self {
        BaoSpectrum {
            amplitude: 2.0e5,
            ns: 0.96,
            k_eq: 0.016,
            r_bao: 105.0,
            a_bao: 0.08,
            k_silk: 0.15,
        }
    }

    /// The same smooth spectrum with wiggles switched off — the no-BAO
    /// control sample for the Figure 1 comparison.
    pub fn no_wiggle(mut self) -> Self {
        self.a_bao = 0.0;
        self
    }
}

impl PowerSpectrum for BaoSpectrum {
    fn power(&self, k: f64) -> f64 {
        if k <= 0.0 {
            return 0.0;
        }
        let x = k / self.k_eq;
        let smooth = self.amplitude * x.powf(self.ns) / (1.0 + x * x).powi(2);
        let wiggle = 1.0 + self.a_bao * (k * self.r_bao).sin() * (-(k / self.k_silk).powi(2)).exp();
        smooth * wiggle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_scaling() {
        let p = PowerLawSpectrum {
            amplitude: 3.0,
            index: -1.5,
        };
        assert!((p.power(1.0) - 3.0).abs() < 1e-12);
        assert!((p.power(4.0) - 3.0 * 4.0f64.powf(-1.5)).abs() < 1e-12);
        assert_eq!(p.power(0.0), 0.0);
    }

    #[test]
    fn bao_spectrum_positive_and_peaked() {
        let p = BaoSpectrum::fiducial();
        let ks: Vec<f64> = (1..2000).map(|i| i as f64 * 1e-3).collect();
        let values: Vec<f64> = ks.iter().map(|&k| p.power(k)).collect();
        assert!(values.iter().all(|&v| v > 0.0), "P(k) must stay positive");
        // Peak near k_eq: value at k_eq should exceed values far away.
        let at_eq = p.power(p.k_eq);
        assert!(at_eq > p.power(p.k_eq * 30.0));
        assert!(at_eq > p.power(p.k_eq / 30.0));
    }

    #[test]
    fn wiggles_modulate_smooth_spectrum() {
        let w = BaoSpectrum::fiducial();
        let s = w.no_wiggle();
        // Ratio oscillates around 1 with amplitude ≤ a_bao.
        let mut max_dev = 0.0f64;
        for i in 1..400 {
            let k = i as f64 * 1e-3;
            let ratio = w.power(k) / s.power(k);
            max_dev = max_dev.max((ratio - 1.0).abs());
            assert!((ratio - 1.0).abs() <= w.a_bao + 1e-12);
        }
        assert!(max_dev > 0.5 * w.a_bao, "wiggles too weak: {max_dev}");
    }

    #[test]
    fn correlation_function_shows_bao_peak() {
        // ξ(r) from the wiggle spectrum must show a feature near r_bao
        // that the no-wiggle spectrum lacks. Silk damping smears the
        // feature over ~±15 Mpc/h, so compare a window around the peak
        // against well-separated scales.
        let w = BaoSpectrum::fiducial();
        let s = w.no_wiggle();
        let xi_diff = |r: f64| w.correlation(r, 1.0, 4000) - s.correlation(r, 1.0, 4000);
        let at_peak = [95.0, 100.0, 105.0, 110.0]
            .iter()
            .map(|&r| xi_diff(r))
            .fold(f64::NEG_INFINITY, f64::max);
        let off_peak = [40.0, 50.0, 165.0, 180.0]
            .iter()
            .map(|&r| xi_diff(r).abs())
            .fold(0.0, f64::max);
        assert!(
            at_peak > 0.0 && at_peak > 1.5 * off_peak,
            "BAO peak not localized: at={at_peak} off={off_peak}"
        );
    }

    #[test]
    fn correlation_decreases_at_large_r() {
        let p = BaoSpectrum::fiducial();
        let xi10 = p.correlation(10.0, 1.0, 2000);
        let xi150 = p.correlation(150.0, 1.0, 2000).abs();
        assert!(xi10 > 0.0);
        assert!(xi10 > 10.0 * xi150, "ξ must decay: {xi10} vs {xi150}");
    }
}
