//! Lognormal galaxy mocks.
//!
//! The standard cheap stand-in for an N-body galaxy catalog: take a
//! Gaussian field `G(x)` with the target spectrum, form the manifestly
//! positive density `ρ(x) ∝ exp(G − σ²/2)` (unit mean), and Poisson-
//! sample galaxies cell by cell. The result carries the input two-point
//! clustering (to first order) **and** — because the exponential is a
//! non-linear local transformation — a non-zero three-point function,
//! which is exactly what the 3PCF pipeline needs to detect.

use crate::grf::GaussianField;
use crate::pk::PowerSpectrum;
use crate::rsd::RsdParams;
use galactos_catalog::{Catalog, Galaxy};
use galactos_math::Vec3;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A generated lognormal mock: the catalog plus the field and
/// displacement that produced it (kept for RSD and diagnostics).
pub struct LognormalMock {
    pub catalog: Catalog,
    pub field: GaussianField,
    /// Zel'dovich displacement sampled on the mesh (for RSD).
    pub displacement: [Vec<f64>; 3],
}

/// Build a lognormal mock with roughly `n_target` galaxies in a periodic
/// box, optionally applying redshift-space distortions along z.
pub fn generate(
    spectrum: &dyn PowerSpectrum,
    mesh_n: usize,
    box_len: f64,
    n_target: usize,
    seed: u64,
    rsd: Option<RsdParams>,
) -> LognormalMock {
    let (field, displacement) =
        GaussianField::generate_with_displacement(spectrum, mesh_n, box_len, seed);
    let sigma2 = field.sigma().powi(2);
    let n3 = mesh_n * mesh_n * mesh_n;
    let cell = box_len / mesh_n as f64;

    // Unit-mean lognormal density per cell.
    let density: Vec<f64> = field
        .delta()
        .iter()
        .map(|&g| (g - 0.5 * sigma2).exp())
        .collect();
    let mean_density = density.iter().sum::<f64>() / n3 as f64;
    let per_cell_mean = n_target as f64 / n3 as f64 / mean_density;

    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(0x5eed));
    let mut galaxies = Vec::with_capacity(n_target + n_target / 10);
    for i in 0..mesh_n {
        for j in 0..mesh_n {
            for k in 0..mesh_n {
                let idx = (i * mesh_n + j) * mesh_n + k;
                let lambda = per_cell_mean * density[idx];
                let count = galactos_catalog::random::sample_poisson(lambda, &mut rng);
                for _ in 0..count {
                    let pos = Vec3::new(
                        (i as f64 + rng.random_range(0.0..1.0)) * cell,
                        (j as f64 + rng.random_range(0.0..1.0)) * cell,
                        (k as f64 + rng.random_range(0.0..1.0)) * cell,
                    );
                    galaxies.push(Galaxy::unit(pos));
                }
            }
        }
    }

    let mut catalog = Catalog::new_periodic(galaxies, box_len);
    if let Some(params) = rsd {
        crate::rsd::apply_plane_parallel(&mut catalog, &field, &displacement, params);
    }
    LognormalMock {
        catalog,
        field,
        displacement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pk::PowerLawSpectrum;
    use galactos_kdtree_shim::pair_fraction_within;

    /// Tiny local helper namespace so the test reads clearly without a
    /// dependency on the kd-tree crate: brute-force pair fraction.
    mod galactos_kdtree_shim {
        use galactos_catalog::Catalog;

        /// Fraction of ordered pairs with separation below `r`
        /// (minimum-image in the periodic box).
        pub fn pair_fraction_within(catalog: &Catalog, r: f64) -> f64 {
            let l = catalog.periodic.expect("periodic catalog");
            let n = catalog.len();
            let mut count = 0usize;
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        let d = catalog.galaxies[i]
                            .pos
                            .periodic_delta(catalog.galaxies[j].pos, l)
                            .norm();
                        if d < r {
                            count += 1;
                        }
                    }
                }
            }
            count as f64 / (n * (n - 1)) as f64
        }
    }

    #[test]
    fn target_count_roughly_met() {
        let p = PowerLawSpectrum {
            amplitude: 200.0,
            index: -1.5,
        };
        let mock = generate(&p, 16, 100.0, 2000, 7, None);
        let n = mock.catalog.len() as f64;
        assert!(
            (n - 2000.0).abs() < 6.0 * 2000f64.sqrt() + 100.0,
            "generated {n} galaxies"
        );
        assert_eq!(mock.catalog.periodic, Some(100.0));
    }

    #[test]
    fn deterministic_by_seed() {
        let p = PowerLawSpectrum {
            amplitude: 100.0,
            index: -1.0,
        };
        let a = generate(&p, 8, 50.0, 300, 3, None);
        let b = generate(&p, 8, 50.0, 300, 3, None);
        assert_eq!(a.catalog.len(), b.catalog.len());
        assert_eq!(a.catalog.galaxies[0].pos, b.catalog.galaxies[0].pos);
    }

    #[test]
    fn clustering_exceeds_poisson() {
        // A strongly clustered mock must show an excess of close pairs
        // over a uniform catalog of the same density.
        let p = PowerLawSpectrum {
            amplitude: 3000.0,
            index: -1.8,
        };
        let mock = generate(&p, 16, 100.0, 1200, 5, None);
        let uniform = galactos_catalog::uniform_box(mock.catalog.len(), 100.0, 99);
        let r = 8.0;
        let f_mock = pair_fraction_within(&mock.catalog, r);
        let f_uni = pair_fraction_within(&uniform, r);
        assert!(
            f_mock > 1.3 * f_uni,
            "no clustering detected: mock {f_mock} vs uniform {f_uni}"
        );
    }

    #[test]
    fn rsd_changes_z_only() {
        let p = PowerLawSpectrum {
            amplitude: 500.0,
            index: -1.5,
        };
        let real = generate(&p, 16, 100.0, 800, 11, None);
        let red = generate(
            &p,
            16,
            100.0,
            800,
            11,
            Some(RsdParams {
                growth_rate: 0.8,
                sigma_v: 0.0,
                seed: 1,
            }),
        );
        assert_eq!(real.catalog.len(), red.catalog.len());
        let mut moved = 0usize;
        for (a, b) in real
            .catalog
            .galaxies
            .iter()
            .zip(red.catalog.galaxies.iter())
        {
            assert!((a.pos.x - b.pos.x).abs() < 1e-12);
            assert!((a.pos.y - b.pos.y).abs() < 1e-12);
            if (a.pos.z - b.pos.z).abs() > 1e-9 {
                moved += 1;
            }
        }
        assert!(
            moved > real.catalog.len() / 2,
            "RSD moved only {moved} galaxies"
        );
    }
}
