//! # Galactos-rs
//!
//! A from-scratch Rust reproduction of **"Galactos: Computing the
//! Anisotropic 3-Point Correlation Function for 2 Billion Galaxies"**
//! (Friesen et al., SC '17): the O(N²) spherical-harmonic anisotropic
//! 3PCF algorithm, its single-node SIMD kernel, the non-power-of-two
//! k-d domain decomposition with halo exchange, and every substrate the
//! evaluation depends on (k-d trees, a message-passing cluster
//! simulator, mock catalogs with BAO and redshift-space distortions,
//! covariance analysis).
//!
//! ## Quick start
//!
//! ```
//! use galactos::prelude::*;
//!
//! // A small random catalog in a 50 Mpc/h periodic box.
//! let catalog = uniform_box(2_000, 50.0, 42);
//!
//! // Paper-style configuration, scaled down: lmax=3, Rmax=20, 5 bins.
//! let mut config = EngineConfig::test_default(20.0, 3, 5);
//! config.precision = TreePrecision::Mixed;
//!
//! let engine = Engine::new(config);
//! let zeta = engine.compute(&catalog).normalized();
//!
//! // The (l, l', m) = (0,0,0) coefficient is the pair-count moment;
//! // higher multipoles of a uniform catalog are statistically zero.
//! assert!(zeta.get(0, 0, 0, 2, 2).re > 0.0);
//! ```
//!
//! The crates are re-exported under their subsystem names:
//! [`math`], [`simd`], [`kdtree`], [`cluster`], [`domain`], [`catalog`],
//! [`mocks`], [`grid`], [`core`], [`analysis`], [`ensemble`], [`obs`].

#![forbid(unsafe_code)]

pub use galactos_analysis as analysis;
pub use galactos_catalog as catalog;
pub use galactos_cluster as cluster;
pub use galactos_core as core;
pub use galactos_domain as domain;
pub use galactos_ensemble as ensemble;
pub use galactos_grid as grid;
pub use galactos_kdtree as kdtree;
pub use galactos_math as math;
pub use galactos_mocks as mocks;
pub use galactos_obs as obs;
pub use galactos_simd as simd;

/// The most common imports for application code.
pub mod prelude {
    pub use galactos_analysis::covariance::{jackknife_from_partials, sample_covariance};
    pub use galactos_catalog::sky::{read_sky_csv, write_sky_csv};
    pub use galactos_catalog::{uniform_box, Cap, Catalog, Galaxy, SurveyGeometry};
    pub use galactos_core::bins::RadialBins;
    pub use galactos_core::config::{EngineConfig, Scheduling, TreePrecision};
    pub use galactos_core::engine::Engine;
    pub use galactos_core::estimator::{EstimatorChoice, EstimatorKind};
    pub use galactos_core::kernel::{BackendChoice, BackendKind};
    pub use galactos_core::pipeline::{
        compute_distributed, compute_distributed_sharded, compute_distributed_supervised,
        compute_distributed_supervised_observed, RetryPolicy,
    };
    pub use galactos_core::result::{AnisotropicZeta, IsotropicZeta};
    pub use galactos_core::survey::{SurveyCompute, SurveyConfig, SurveyZeta};
    pub use galactos_core::traversal::{TraversalChoice, TraversalKind};
    pub use galactos_ensemble::{EnsembleConfig, MockEnsemble, SpectrumChoice};
    pub use galactos_grid::{GridConfig, MassAssignment};
    pub use galactos_math::cosmology::FiducialCosmology;
    pub use galactos_math::{LineOfSight, Vec3};
    pub use galactos_mocks::{BaoSpectrum, PowerLawSpectrum, PowerSpectrum};
    pub use galactos_obs::chrome::chrome_trace_json;
    pub use galactos_obs::summary::render_summary;
    pub use galactos_obs::ObsSession;
}
