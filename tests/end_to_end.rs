//! Workspace-level integration tests: whole-pipeline flows that span
//! mocks → catalogs → engine → distributed execution → analysis.

use galactos::core::isotropic::{isotropic_multipoles, isotropic_triplets};
use galactos::core::naive::naive_anisotropic;
use galactos::mocks::cluster_process::NeymanScott;
use galactos::prelude::*;

fn clustered_catalog(seed: u64) -> Catalog {
    let mut c = NeymanScott {
        parent_density: 1.0e-3,
        mean_children: 8.0,
        sigma: 1.5,
    }
    .generate(40.0, seed);
    c.periodic = None;
    c
}

#[test]
fn mock_to_zeta_to_isotropic_consistency() {
    // Generate a clustered mock, run the anisotropic engine, compress,
    // and verify against the independent isotropic implementation.
    let cat = clustered_catalog(3);
    let mut config = EngineConfig::test_default(10.0, 3, 4);
    config.subtract_self_pairs = true;
    let engine = Engine::new(config.clone());
    let zeta = engine.compute(&cat);
    let compressed = zeta.compress_isotropic();
    let baseline = isotropic_multipoles(&cat.galaxies, &config.bins, 3, None, false);
    let scale = baseline.max_abs().max(1.0);
    assert!(
        compressed.max_difference(&baseline) < 1e-8 * scale,
        "diff {}",
        compressed.max_difference(&baseline)
    );
}

#[test]
fn distributed_equals_single_on_weighted_clustered_data() {
    let mut cat = clustered_catalog(5);
    // Non-trivial weights.
    for (i, g) in cat.galaxies.iter_mut().enumerate() {
        g.weight = 0.5 + (i % 4) as f64 * 0.25;
    }
    let mut config = EngineConfig::test_default(8.0, 3, 3);
    config.subtract_self_pairs = true;
    let single = Engine::new(config.clone()).compute(&cat);
    let run = compute_distributed(&cat, &config, 5);
    let scale = single.max_abs().max(1.0);
    assert!(
        run.zeta.max_difference(&single) < 1e-9 * scale,
        "diff {}",
        run.zeta.max_difference(&single)
    );
    assert_eq!(run.zeta.num_primaries, single.num_primaries);
}

#[test]
fn io_roundtrip_preserves_zeta_exactly() {
    let cat = clustered_catalog(7);
    let path = std::env::temp_dir().join("galactos_e2e_roundtrip.gcat");
    galactos::catalog::io::write_binary(&cat, &path).unwrap();
    let back = galactos::catalog::io::read_binary(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let config = EngineConfig::test_default(8.0, 2, 3);
    let engine = Engine::new(config);
    // One thread: reduction order fixed, so lossless I/O means bitwise
    // identical results.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let a = pool.install(|| engine.compute(&cat));
    let b = pool.install(|| engine.compute(&back));
    assert_eq!(a.max_difference(&b), 0.0, "binary IO must be lossless");
}

#[test]
fn data_minus_randoms_kills_the_window_signal() {
    // On *pure random* data, the D-R field's multipoles must be
    // consistent with zero (they measure the overdensity, which is
    // zero), while the raw data multipoles are dominated by the
    // geometry/density signal.
    let survey = SurveyGeometry::full_shell(Vec3::ZERO, 10.0, 40.0);
    let data = survey.sample_randoms(1500, 1);
    let randoms = survey.sample_randoms(4500, 2);
    let bins = RadialBins::linear(1.0, 12.0, 3);
    let raw = isotropic_multipoles(&data.galaxies, &bins, 2, None, false);
    let field = Catalog::data_minus_randoms(&data, &randoms);
    let dr = isotropic_multipoles(&field.galaxies, &bins, 2, None, false);
    // Compare per-primary l=0 moments: D-R must be much smaller than raw.
    let b = 1;
    let raw_l0 = (raw.get(0, b, b) / raw.total_primary_weight).abs();
    // D-R primaries include negative weights; normalize by data count.
    let dr_l0 = (dr.get(0, b, b) / data.len() as f64).abs();
    assert!(
        dr_l0 < 0.25 * raw_l0,
        "D-R did not suppress the window: raw {raw_l0}, D-R {dr_l0}"
    );
}

#[test]
fn periodic_and_open_treatments_differ_only_by_boundary_pairs() {
    let cat = uniform_box(300, 20.0, 9);
    let config = EngineConfig::test_default(5.0, 2, 2);
    let engine = Engine::new(config);
    let z_periodic = engine.compute(&cat);
    let mut open = cat.clone();
    open.periodic = None;
    let z_open = engine.compute(&open);
    // Periodic sees strictly more pairs (wrapped neighbors).
    assert!(z_periodic.binned_pairs > z_open.binned_pairs);
    // Both count the same primaries.
    assert_eq!(z_periodic.num_primaries, z_open.num_primaries);
}

#[test]
fn engine_oracle_agreement_on_mock_catalogs() {
    // The O(N³) oracle on a *generated* (not uniform-random) catalog —
    // closing the loop between the mock generators and the engine.
    let mock = NeymanScott {
        parent_density: 2e-3,
        mean_children: 5.0,
        sigma: 1.0,
    }
    .generate(12.0, 11);
    let galaxies: Vec<Galaxy> = mock.galaxies.iter().take(40).copied().collect();
    let config = EngineConfig::test_default(5.0, 3, 3);
    let engine_z = Engine::new(config.clone()).compute(&Catalog::new(galaxies.clone()));
    let oracle = naive_anisotropic(&galaxies, &config, None, true);
    let scale = oracle.max_abs().max(1.0);
    assert!(engine_z.max_difference(&oracle) < 1e-9 * scale);
}

#[test]
fn jackknife_covariance_has_positive_variances_on_signal() {
    use galactos::analysis::covariance::jackknife_from_partials;
    let cat = clustered_catalog(13);
    let config = EngineConfig::test_default(8.0, 2, 3);
    let engine = Engine::new(config);
    let positions = cat.positions();
    let plan = galactos::domain::DomainPlan::build(&positions, cat.bounds, 6);
    let partials: Vec<_> = (0..6)
        .map(|r| {
            let idx: Vec<usize> = plan.owned_indices(r).iter().map(|&i| i as usize).collect();
            engine.compute(&cat.subset(&idx))
        })
        .collect();
    let cov = jackknife_from_partials(&partials);
    // The pair-moment components must carry variance.
    let labels = galactos::analysis::vectorize::zeta_labels(&partials[0]);
    let idx = labels.iter().position(|s| s == "re[0,0,0](1,1)").unwrap();
    assert!(cov.sigmas()[idx] > 0.0);
    assert!(cov.mean[idx] > 0.0);
}

#[test]
fn isotropic_gold_standard_on_generated_mocks() {
    let mock = NeymanScott {
        parent_density: 3e-3,
        mean_children: 4.0,
        sigma: 0.8,
    }
    .generate(10.0, 17);
    let galaxies: Vec<Galaxy> = mock.galaxies.iter().take(35).copied().collect();
    let bins = RadialBins::linear(0.0, 4.0, 3);
    let fast = isotropic_multipoles(&galaxies, &bins, 3, None, false);
    let gold = isotropic_triplets(&galaxies, &bins, 3, None, false);
    let scale = gold.max_abs().max(1.0);
    assert!(fast.max_difference(&gold) < 1e-9 * scale);
}
