//! Statistical physics tests: seeded but randomized catalogs whose 3PCF
//! must show (or not show) signal as the underlying process dictates.

use galactos::core::paircount::landy_szalay;
use galactos::mocks::cluster_process::NeymanScott;
use galactos::mocks::lognormal;
use galactos::mocks::rsd::RsdParams;
use galactos::prelude::*;

#[test]
fn three_point_signal_detected_in_clustered_process() {
    // The Neyman–Scott process has a positive connected 3PCF at the
    // cluster scale: triplets within one cluster are overabundant.
    // Compare the self-pair-subtracted l=0 moment on the smallest
    // diagonal bin against a uniform catalog of the same size.
    let ns = NeymanScott {
        parent_density: 5e-4,
        mean_children: 12.0,
        sigma: 1.5,
    };
    let clustered = ns.generate(50.0, 3);
    let uniform = uniform_box(clustered.len(), 50.0, 99);
    let mut config = EngineConfig::test_default(6.0, 2, 3);
    config.subtract_self_pairs = true;
    let engine = Engine::new(config);
    let zc = engine.compute(&clustered).normalized();
    let zu = engine.compute(&uniform).normalized();
    let signal_c = zc.get(0, 0, 0, 0, 0).re;
    let signal_u = zu.get(0, 0, 0, 0, 0).re;
    assert!(
        signal_c > 10.0 * signal_u.max(1e-12),
        "no triplet excess: clustered {signal_c} vs uniform {signal_u}"
    );
}

#[test]
fn kaiser_rsd_enhances_quadrupole_coupling() {
    // Redshift-space distortions must light up the (2,0) multipole
    // coupling — the anisotropic signal the paper exists to measure.
    let spectrum = PowerLawSpectrum {
        amplitude: 8.0,
        index: -1.2,
    };
    let real = lognormal::generate(&spectrum, 32, 100.0, 3000, 11, None);
    let red = lognormal::generate(&spectrum, 32, 100.0, 3000, 11, Some(RsdParams::kaiser(1.2)));
    let mut config = EngineConfig::test_default(25.0, 2, 5);
    config.subtract_self_pairs = true;
    let engine = Engine::new(config);
    let z_real = engine.compute(&real.catalog).normalized();
    let z_red = engine.compute(&red.catalog).normalized();
    let coupling =
        |z: &AnisotropicZeta| -> f64 { (0..5).map(|b| z.get(2, 0, 0, b, b).re.abs()).sum() };
    let c_real = coupling(&z_real);
    let c_red = coupling(&z_red);
    assert!(
        c_red > 1.5 * c_real,
        "RSD quadrupole not enhanced: real {c_real} vs redshift {c_red}"
    );
}

#[test]
fn landy_szalay_recovers_clustering_scale() {
    // ξ(r) of the Neyman–Scott process is strongly positive below the
    // cluster scale (σ√2 pair dispersion) and near zero well above it.
    let ns = NeymanScott {
        parent_density: 8e-4,
        mean_children: 15.0,
        sigma: 1.2,
    };
    let data = ns.generate(60.0, 7);
    let randoms = uniform_box(3 * data.len(), 60.0, 8);
    let bins = RadialBins::linear(0.5, 24.5, 8);
    let xi = landy_szalay(&data, &randoms, &bins);
    assert!(xi[0] > 2.0, "small-scale ξ = {} too weak", xi[0]);
    let far = xi[7].abs();
    assert!(far < 0.5, "large-scale ξ = {far} should be ~0");
    // Monotone-ish decline: first bin dominates the last three.
    assert!(xi[0] > 4.0 * xi[5].abs().max(0.05));
}

#[test]
fn anisotropic_null_on_uniform_random_catalog() {
    // On a uniform catalog every normalized multipole beyond l=0 is
    // noise; with ~1e3 primaries the rms is far below the l=0 signal.
    let cat = uniform_box(1200, 30.0, 21);
    let mut config = EngineConfig::test_default(8.0, 3, 2);
    config.subtract_self_pairs = true;
    let engine = Engine::new(config);
    let z = engine.compute(&cat).normalized();
    let signal = z.get(0, 0, 0, 1, 1).re;
    assert!(signal > 0.0);
    for l in 1..=3usize {
        for m in 0..=l {
            let v = z.get(l, l, m, 1, 1).abs();
            assert!(v < 0.1 * signal, "l={l} m={m}: {v} not small vs {signal}");
        }
    }
}

#[test]
fn lognormal_mock_power_spectrum_matches_input() {
    // The Gaussian field driving the mocks must realize the input P(k).
    use galactos::mocks::GaussianField;
    let p = PowerLawSpectrum {
        amplitude: 50.0,
        index: -1.0,
    };
    let field = GaussianField::generate(&p, 32, 64.0, 5);
    let measured = field.measure_power(8);
    let mut checked = 0;
    for (k, pk, n) in measured {
        if n < 100 {
            continue;
        }
        let rel = (pk / p.power(k) - 1.0).abs();
        assert!(rel < 0.5, "k={k}: rel error {rel}");
        checked += 1;
    }
    assert!(checked >= 3);
}

#[test]
fn survey_mask_removes_the_right_galaxies() {
    let cat = uniform_box(5000, 80.0, 31);
    let mut survey = SurveyGeometry::full_shell(Vec3::splat(40.0), 10.0, 35.0);
    survey
        .holes
        .push(galactos::catalog::survey::Cap::new(Vec3::X, 0.4));
    let masked = survey.apply(&cat, 1);
    assert!(!masked.is_empty());
    for g in &masked.galaxies {
        assert!(survey.in_footprint(g.pos));
    }
    // Shell volume fraction sanity: the masked count is near the
    // geometric expectation.
    let shell_vol = 4.0 / 3.0 * std::f64::consts::PI * (35.0f64.powi(3) - 10.0f64.powi(3));
    // Portions of the shell poke out of the box; just require the count
    // to be within a factor ~2 of the naive estimate.
    let expect = 5000.0 * shell_vol / 80.0f64.powi(3);
    let got = masked.len() as f64;
    assert!(
        got > 0.3 * expect && got < 1.2 * expect,
        "masked count {got} vs naive {expect}"
    );
}
