//! Determinism and numerical-stability guarantees.

use galactos::mocks::cluster_process::NeymanScott;
use galactos::prelude::*;

#[test]
fn repeated_runs_are_bitwise_identical() {
    let cat = uniform_box(500, 20.0, 3);
    let config = EngineConfig::test_default(6.0, 3, 3);
    let engine = Engine::new(config);
    // Single-threaded: reduction order is fixed, results bitwise equal.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let a = pool.install(|| engine.compute(&cat));
    let b = pool.install(|| engine.compute(&cat));
    assert_eq!(a.max_difference(&b), 0.0);
}

#[test]
fn thread_count_does_not_change_results_beyond_roundoff() {
    let mut cat = NeymanScott {
        parent_density: 1e-3,
        mean_children: 8.0,
        sigma: 1.5,
    }
    .generate(30.0, 5);
    cat.periodic = None;
    let config = EngineConfig::test_default(8.0, 3, 3);
    let engine = Engine::new(config);
    let pool1 = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let pool4 = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    let a = pool1.install(|| engine.compute(&cat));
    let b = pool4.install(|| engine.compute(&cat));
    let scale = a.max_abs().max(1.0);
    assert!(
        a.max_difference(&b) < 1e-10 * scale,
        "thread-count dependence: {}",
        a.max_difference(&b)
    );
    assert_eq!(a.binned_pairs, b.binned_pairs);
    assert_eq!(a.num_primaries, b.num_primaries);
}

#[test]
fn mock_generators_are_seed_deterministic() {
    let a = NeymanScott {
        parent_density: 1e-3,
        mean_children: 5.0,
        sigma: 1.0,
    }
    .generate(25.0, 42);
    let b = NeymanScott {
        parent_density: 1e-3,
        mean_children: 5.0,
        sigma: 1.0,
    }
    .generate(25.0, 42);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.galaxies.iter().zip(b.galaxies.iter()) {
        assert_eq!(x.pos, y.pos);
    }
}

#[test]
fn distributed_run_is_deterministic_across_invocations() {
    let mut cat = uniform_box(200, 15.0, 7);
    cat.periodic = None;
    let config = EngineConfig::test_default(5.0, 2, 2);
    let a = compute_distributed(&cat, &config, 4);
    let b = compute_distributed(&cat, &config, 4);
    // Partition, exchange and per-rank pair sets are exactly
    // deterministic; only intra-rank thread reduction order may vary.
    let scale = a.zeta.max_abs().max(1.0);
    assert!(a.zeta.max_difference(&b.zeta) < 1e-12 * scale);
    for (ra, rb) in a.ranks.iter().zip(b.ranks.iter()) {
        assert_eq!(ra.owned, rb.owned);
        assert_eq!(ra.ghosts, rb.ghosts);
        assert_eq!(ra.binned_pairs, rb.binned_pairs);
    }
}

#[test]
fn weights_propagate_linearly_through_the_pipeline() {
    let mut cat = uniform_box(150, 12.0, 9);
    cat.periodic = None;
    let config = EngineConfig::test_default(4.0, 2, 2);
    let engine = Engine::new(config);
    let base = engine.compute(&cat);
    let mut scaled = cat.clone();
    for g in &mut scaled.galaxies {
        g.weight *= 3.0;
    }
    let tripled = engine.compute(&scaled);
    // Every ζ term carries w_i w_j w_k → factor 27.
    for (a, b) in base.data().iter().zip(tripled.data().iter()) {
        assert!(
            (*a * 27.0).dist_inf(*b) < 1e-9 * (1.0 + a.abs() * 27.0),
            "{a} vs {b}"
        );
    }
    assert!((tripled.total_primary_weight - 3.0 * base.total_primary_weight).abs() < 1e-9);
}
