//! Workspace smoke test: every target in the workspace — the 18 bench
//! binaries, the 6 examples, and the criterion bench — must keep
//! compiling as refactors land. `cargo test` alone only builds lib and
//! test targets, so a green test run can hide broken binaries; this
//! test closes that gap by driving `cargo check` over all of them.

use std::path::Path;
use std::process::Command;

#[test]
fn all_targets_check() {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = Command::new(cargo)
        .current_dir(manifest_dir)
        .args([
            "check",
            "--workspace",
            "--examples",
            "--benches",
            "--bins",
            "--quiet",
        ])
        .output()
        .expect("failed to spawn cargo check");
    assert!(
        output.status.success(),
        "cargo check --workspace --examples --benches --bins failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}
