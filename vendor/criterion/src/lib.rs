//! Offline stand-in for `criterion`.
//!
//! Benchmarks compile and run with the same source: groups, throughput
//! annotations, `BenchmarkId`, and `Bencher::iter`. Measurement is a
//! plain warm-up + timed-batch loop reporting mean time per iteration
//! (and derived throughput); there is no statistical analysis, outlier
//! rejection, or HTML report.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

pub struct Bencher {
    /// Total time / iterations of the measured batch.
    mean: Duration,
    iters_done: u64,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run until the warm-up budget is spent, measuring the
        // per-iteration cost to size the timed batch.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((self.measurement_time.as_secs_f64() / per_iter.max(1e-9)) as u64).max(1);

        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean = elapsed / u32::try_from(batch.min(u64::from(u32::MAX))).unwrap_or(1);
        self.iters_done = batch;
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

#[derive(Clone, Copy, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let name = id.into_benchmark_id();
        run_one(self, &name, None, f);
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(self.criterion, &name, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

fn run_one(criterion: &Criterion, name: &str, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        mean: Duration::ZERO,
        iters_done: 0,
        measurement_time: criterion.measurement_time,
        warm_up_time: criterion.warm_up_time,
    };
    f(&mut bencher);
    let mut line = format!(
        "{name:<48} {:>12}/iter  ({} iters)",
        format_duration(bencher.mean),
        bencher.iters_done
    );
    if let Some(t) = throughput {
        let secs = bencher.mean.as_secs_f64();
        if secs > 0.0 {
            match t {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:.1} Melem/s", n as f64 / secs / 1e6));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  {:.1} MB/s", n as f64 / secs / 1e6));
                }
            }
        }
    }
    println!("{line}");
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
