//! Offline stand-in for `rayon`.
//!
//! Implements the iterator surface Galactos uses (`par_iter`,
//! `par_chunks`, `par_chunks_mut`, range `into_par_iter`, with `fold` /
//! `map` / `enumerate` / `for_each` / `reduce`) over `std::thread::
//! scope`. Two properties the engine's tests rely on are guaranteed:
//!
//! * **Dynamic scheduling** — workers pull task indices from a shared
//!   atomic counter, so load balancing matches rayon's work-stealing in
//!   spirit.
//! * **Deterministic reduction** — per-task results are merged in task
//!   index order (out-of-order completions are buffered), so a given
//!   chunking produces bit-identical floating-point results regardless
//!   of thread count or scheduling race outcomes. Real rayon only
//!   guarantees a deterministic *join tree*; this is strictly stronger
//!   and makes `cargo test` reproducible on any host.
//!
//! Thread pools are lightweight: `ThreadPool::install` pins the number
//! of worker threads parallel calls may use via a thread-local, and
//! workers are spawned per parallel call (scoped threads; spawn cost is
//! irrelevant at Galactos problem sizes).

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod iter;
pub mod slice;

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator};
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

thread_local! {
    /// Thread count pinned by `ThreadPool::install`; 0 = host default.
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn host_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Number of threads parallel calls on this thread will use.
pub fn current_num_threads() -> usize {
    let pinned = CURRENT_THREADS.with(Cell::get);
    if pinned == 0 {
        host_threads()
    } else {
        pinned
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count pinned for any parallel
    /// calls it makes.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(CURRENT_THREADS.with(|c| {
            let prev = c.get();
            c.set(self.num_threads);
            prev
        }));
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => host_threads(),
            Some(n) => n,
        };
        Ok(ThreadPool { num_threads: n.max(1) })
    }
}

/// Run `task(0..n_tasks)` across worker threads (dynamic pulling) and
/// fold the results in task-index order: `merge(..merge(merge(zero(),
/// r0), r1).., r_last)`.
pub(crate) fn execute_reduce<R, T, Z, M>(n_tasks: usize, task: T, zero: Z, merge: M) -> R
where
    R: Send,
    T: Fn(usize) -> R + Sync,
    Z: Fn() -> R + Sync,
    M: Fn(R, R) -> R + Sync,
{
    let threads = current_num_threads().min(n_tasks.max(1));
    if threads <= 1 || n_tasks <= 1 {
        let mut acc = zero();
        for i in 0..n_tasks {
            acc = merge(acc, task(i));
        }
        return acc;
    }

    struct Ordered<R> {
        next: usize,
        pending: BTreeMap<usize, R>,
        acc: Option<R>,
    }
    let ordered = Mutex::new(Ordered { next: 0, pending: BTreeMap::new(), acc: None });
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n_tasks {
                    break;
                }
                let result = task(i);
                let mut state = ordered.lock().unwrap();
                state.pending.insert(i, result);
                // Drain the completed prefix so memory stays bounded by
                // the out-of-order window, not the task count.
                loop {
                    let key = state.next;
                    let Some(r) = state.pending.remove(&key) else {
                        break;
                    };
                    let acc = match state.acc.take() {
                        Some(a) => merge(a, r),
                        None => merge(zero(), r),
                    };
                    state.acc = Some(acc);
                    state.next += 1;
                }
            });
        }
    });

    let state = ordered.into_inner().unwrap();
    debug_assert!(state.pending.is_empty());
    state.acc.unwrap_or_else(zero)
}

/// Run `task(i)` for `i` in `0..n_tasks` across worker threads.
pub(crate) fn execute_for_each<T>(n_tasks: usize, task: T)
where
    T: Fn(usize) + Sync,
{
    let threads = current_num_threads().min(n_tasks.max(1));
    if threads <= 1 || n_tasks <= 1 {
        for i in 0..n_tasks {
            task(i);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n_tasks {
                    break;
                }
                task(i);
            });
        }
    });
}

/// Split `n_items` into contiguous index ranges of `chunk` items.
pub(crate) fn chunk_ranges(n_items: usize, chunk: usize) -> impl Fn(usize) -> Range<usize> {
    move |task| {
        let start = task * chunk;
        start..(start + chunk).min(n_items)
    }
}

/// Per-item chunk size used when folding flat item sequences. Fixed (not
/// a function of thread count) so reduction structure — and therefore
/// float roundoff — is identical for every thread count.
pub(crate) const FOLD_CHUNK: usize = 64;
