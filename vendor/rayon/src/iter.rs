//! Parallel iterator adapters over index ranges and slices.
//!
//! These are eager, concrete types (no general `ParallelIterator`
//! trait machinery): each terminal call (`reduce`, `for_each`) chunks
//! the underlying index space, runs chunks on worker threads via the
//! executor in the crate root, and merges in chunk order.

use crate::{chunk_ranges, execute_for_each, execute_reduce, FOLD_CHUNK};
use std::ops::Range;

/// `collection.into_par_iter()` — implemented for `Range<usize>`.
pub trait IntoParallelIterator {
    type Iter;

    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// `collection.par_iter()` by shared reference.
pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    type Iter;

    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over `0..n`.
pub struct ParRange {
    pub(crate) range: Range<usize>,
}

impl ParRange {
    pub fn fold<A, INIT, F>(self, init: INIT, fold: F) -> FoldRange<INIT, F>
    where
        INIT: Fn() -> A + Sync,
        F: Fn(A, usize) -> A + Sync,
    {
        FoldRange { range: self.range, init, fold }
    }

    pub fn map<R, F>(self, map: F) -> MapRange<F>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        MapRange { range: self.range, map }
    }

    pub fn for_each<F>(self, op: F)
    where
        F: Fn(usize) + Sync,
    {
        let start = self.range.start;
        execute_for_each(self.range.len(), |i| op(start + i));
    }
}

pub struct FoldRange<INIT, F> {
    range: Range<usize>,
    init: INIT,
    fold: F,
}

impl<INIT, F> FoldRange<INIT, F> {
    pub fn reduce<A, Z, M>(self, zero: Z, merge: M) -> A
    where
        A: Send,
        INIT: Fn() -> A + Sync,
        F: Fn(A, usize) -> A + Sync,
        Z: Fn() -> A + Sync,
        M: Fn(A, A) -> A + Sync,
    {
        let offset = self.range.start;
        let n = self.range.len();
        let ranges = chunk_ranges(n, FOLD_CHUNK);
        let n_tasks = n.div_ceil(FOLD_CHUNK);
        let (init, fold) = (&self.init, &self.fold);
        execute_reduce(
            n_tasks,
            move |task| {
                let mut acc = init();
                for i in ranges(task) {
                    acc = fold(acc, offset + i);
                }
                acc
            },
            zero,
            merge,
        )
    }
}

pub struct MapRange<F> {
    range: Range<usize>,
    map: F,
}

impl<F> MapRange<F> {
    pub fn reduce<R, Z, M>(self, zero: Z, merge: M) -> R
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
        Z: Fn() -> R + Sync,
        M: Fn(R, R) -> R + Sync,
    {
        let offset = self.range.start;
        let map = &self.map;
        execute_reduce(self.range.len(), move |i| map(offset + i), zero, merge)
    }
}

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    pub(crate) items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn fold<A, INIT, F>(self, init: INIT, fold: F) -> FoldSlice<'a, T, INIT, F>
    where
        INIT: Fn() -> A + Sync,
        F: Fn(A, &'a T) -> A + Sync,
    {
        FoldSlice { items: self.items, init, fold }
    }

    pub fn map<R, F>(self, map: F) -> MapSlice<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        MapSlice { items: self.items, map }
    }

    pub fn for_each<F>(self, op: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let items = self.items;
        execute_for_each(items.len(), |i| op(&items[i]));
    }
}

pub struct FoldSlice<'a, T, INIT, F> {
    items: &'a [T],
    init: INIT,
    fold: F,
}

impl<'a, T: Sync, INIT, F> FoldSlice<'a, T, INIT, F> {
    /// Post-process each per-chunk accumulator (rayon's `Fold::map`).
    pub fn map<A, R, G>(self, map: G) -> FoldMapSlice<'a, T, INIT, F, G>
    where
        INIT: Fn() -> A + Sync,
        F: Fn(A, &'a T) -> A + Sync,
        G: Fn(A) -> R + Sync,
    {
        FoldMapSlice { items: self.items, init: self.init, fold: self.fold, map }
    }

    pub fn reduce<A, Z, M>(self, zero: Z, merge: M) -> A
    where
        A: Send,
        INIT: Fn() -> A + Sync,
        F: Fn(A, &'a T) -> A + Sync,
        Z: Fn() -> A + Sync,
        M: Fn(A, A) -> A + Sync,
    {
        self.map(|acc| acc).reduce(zero, merge)
    }
}

pub struct FoldMapSlice<'a, T, INIT, F, G> {
    items: &'a [T],
    init: INIT,
    fold: F,
    map: G,
}

impl<'a, T: Sync, INIT, F, G> FoldMapSlice<'a, T, INIT, F, G> {
    pub fn reduce<A, R, Z, M>(self, zero: Z, merge: M) -> R
    where
        R: Send,
        INIT: Fn() -> A + Sync,
        F: Fn(A, &'a T) -> A + Sync,
        G: Fn(A) -> R + Sync,
        Z: Fn() -> R + Sync,
        M: Fn(R, R) -> R + Sync,
    {
        let items = self.items;
        let ranges = chunk_ranges(items.len(), FOLD_CHUNK);
        let n_tasks = items.len().div_ceil(FOLD_CHUNK);
        let (init, fold, map) = (&self.init, &self.fold, &self.map);
        execute_reduce(
            n_tasks,
            move |task| {
                let mut acc = init();
                for i in ranges(task) {
                    acc = fold(acc, &items[i]);
                }
                map(acc)
            },
            zero,
            merge,
        )
    }
}

pub struct MapSlice<'a, T, F> {
    items: &'a [T],
    map: F,
}

impl<'a, T: Sync, F> MapSlice<'a, T, F> {
    pub fn reduce<R, Z, M>(self, zero: Z, merge: M) -> R
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        Z: Fn() -> R + Sync,
        M: Fn(R, R) -> R + Sync,
    {
        let items = self.items;
        let map = &self.map;
        execute_reduce(items.len(), move |i| map(&items[i]), zero, merge)
    }
}
