//! Parallel slice extensions: `par_iter`, `par_chunks`,
//! `par_chunks_mut` (with `enumerate`).

use crate::iter::ParIter;
use crate::{execute_for_each, execute_reduce};

pub trait ParallelSlice<T: Sync> {
    fn as_parallel_slice(&self) -> &[T];

    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { items: self.as_parallel_slice() }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParChunks { items: self.as_parallel_slice(), chunk_size }
    }
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn as_parallel_slice(&self) -> &[T] {
        self
    }
}

pub trait ParallelSliceMut<T: Send> {
    fn as_parallel_slice_mut(&mut self) -> &mut [T];

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParChunksMut { items: self.as_parallel_slice_mut(), chunk_size }
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn as_parallel_slice_mut(&mut self) -> &mut [T] {
        self
    }
}

pub struct ParChunks<'a, T> {
    items: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParChunks<'a, T> {
    fn n_chunks(&self) -> usize {
        self.items.len().div_ceil(self.chunk_size)
    }

    pub fn map<R, F>(self, map: F) -> MapChunks<'a, T, F>
    where
        R: Send,
        F: Fn(&'a [T]) -> R + Sync,
    {
        MapChunks { chunks: self, map }
    }

    pub fn for_each<F>(self, op: F)
    where
        F: Fn(&'a [T]) + Sync,
    {
        let (items, size) = (self.items, self.chunk_size);
        execute_for_each(self.n_chunks(), |c| {
            op(&items[c * size..((c + 1) * size).min(items.len())]);
        });
    }
}

pub struct MapChunks<'a, T, F> {
    chunks: ParChunks<'a, T>,
    map: F,
}

impl<'a, T: Sync, F> MapChunks<'a, T, F> {
    pub fn reduce<R, Z, M>(self, zero: Z, merge: M) -> R
    where
        R: Send,
        F: Fn(&'a [T]) -> R + Sync,
        Z: Fn() -> R + Sync,
        M: Fn(R, R) -> R + Sync,
    {
        let (items, size) = (self.chunks.items, self.chunks.chunk_size);
        let map = &self.map;
        execute_reduce(
            self.chunks.n_chunks(),
            move |c| map(&items[c * size..((c + 1) * size).min(items.len())]),
            zero,
            merge,
        )
    }
}

pub struct ParChunksMut<'a, T> {
    items: &'a mut [T],
    chunk_size: usize,
}

/// Shared view of a mutable slice handed out as disjoint chunks.
///
/// Safety: `get_chunk` is only ever called with distinct chunk indices
/// across worker threads (each task index is claimed exactly once by
/// the executor), so the produced `&mut [T]` ranges never alias.
struct DisjointChunks<T> {
    base: *mut T,
    len: usize,
    chunk_size: usize,
}

unsafe impl<T: Send> Sync for DisjointChunks<T> {}

impl<T> DisjointChunks<T> {
    /// # Safety
    /// Each `chunk` index must be used by at most one thread at a time.
    unsafe fn get_chunk(&self, chunk: usize) -> &mut [T] {
        let start = chunk * self.chunk_size;
        let end = (start + self.chunk_size).min(self.len);
        // SAFETY: in-bounds and disjoint per the caller contract.
        unsafe { std::slice::from_raw_parts_mut(self.base.add(start), end - start) }
    }
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    fn n_chunks(&self) -> usize {
        self.items.len().div_ceil(self.chunk_size)
    }

    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut { chunks: self }
    }

    pub fn for_each<F>(self, op: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| op(chunk));
    }
}

pub struct EnumerateChunksMut<'a, T> {
    chunks: ParChunksMut<'a, T>,
}

impl<'a, T: Send> EnumerateChunksMut<'a, T> {
    pub fn for_each<F>(self, op: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let n_chunks = self.chunks.n_chunks();
        let view = DisjointChunks {
            base: self.chunks.items.as_mut_ptr(),
            len: self.chunks.items.len(),
            chunk_size: self.chunks.chunk_size,
        };
        execute_for_each(n_chunks, |c| {
            // SAFETY: the executor claims each task index exactly once.
            op((c, unsafe { view.get_chunk(c) }));
        });
    }
}
