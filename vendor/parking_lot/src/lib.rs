//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()` returns the guard directly). Poisoned locks are recovered
//! rather than propagated, matching parking_lot's behavior of not
//! tracking poisoning at all.

use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
