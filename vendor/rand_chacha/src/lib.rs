//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream
//! generator (8 rounds, 64-bit block counter) implementing the vendored
//! `rand` traits. Statistical quality is that of real ChaCha8; the
//! word-level stream layout follows the ChaCha reference (little-endian
//! state words emitted in order).

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key (8 words) from the seed; constants/counter/nonce are fixed.
    key: [u32; 8],
    counter: u64,
    buf: [u32; BLOCK_WORDS],
    /// Next unread word in `buf`; `BLOCK_WORDS` means exhausted.
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..4 {
            // One double round: column round + diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng { key, counter: 0, buf: [0; BLOCK_WORDS], index: BLOCK_WORDS }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let same = (0..100).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 3, "different seeds should give different streams");
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean = (0..n)
            .map(|_| (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
