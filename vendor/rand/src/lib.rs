//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The container has no crates.io access, so the workspace vendors the
//! subset Galactos uses: the `RngCore` / `SeedableRng` / `Rng` traits,
//! `random_range` over integer and float ranges, and `SliceRandom::
//! shuffle`. Distributions are uniform; `seed_from_u64` expands the
//! seed with SplitMix64 exactly as `rand_core` documents, so seeded
//! streams are deterministic and well mixed (though not bit-identical
//! to the real crate's samplers).

use std::ops::{Range, RangeInclusive};

/// A source of random bits.
pub trait RngCore {
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// SplitMix64: the seed-expansion generator `rand_core` uses for
/// `seed_from_u64`.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut state = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that `random_range` can sample uniformly.
pub trait SampleUniform: Sized {}

/// Ranges that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

/// Multiply-shift bounded sampling (Lemire); bias is < 2⁻⁶⁴ per draw.
#[inline]
fn bounded_u64(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for Range<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                start.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for Range<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 random bits -> unit interval [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                // Guard against roundoff landing exactly on `end`.
                (v as $t).min(<$t>::from_bits(self.end.to_bits() - 1))
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                (start as f64 + unit * (end as f64 - start as f64)) as $t
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::Rng;

    /// Slice extensions; only `shuffle` (Fisher–Yates) is provided.
    pub trait SliceRandom {
        fn shuffle<R>(&mut self, rng: &mut R)
        where
            R: Rng + ?Sized;
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R>(&mut self, rng: &mut R)
        where
            R: Rng + ?Sized,
        {
            for i in (1..self.len()).rev() {
                let bound = i as u64 + 1;
                let j = ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v));
            let n: usize = rng.random_range(0..7);
            assert!(n < 7);
            let i: i64 = rng.random_range(-6i64..=6);
            assert!((-6..=6).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = Counter(9);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
