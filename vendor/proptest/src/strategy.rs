//! The `Strategy` trait and the built-in strategies for ranges and
//! tuples.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// `generate` returns `None` when a filter rejected the draw; the test
/// runner re-draws the whole case.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    fn prop_filter_map<O, F>(self, _whence: &'static str, filter_map: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, filter_map }
    }

    fn prop_filter<F>(self, _whence: &'static str, filter: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, filter }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.map)
    }
}

pub struct FilterMap<S, F> {
    inner: S,
    filter_map: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.filter_map)
    }
}

pub struct Filter<S, F> {
    inner: S,
    filter: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.filter)(v))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                Some(self.start.wrapping_add(rng.below(span) as $t))
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return Some(rng.next_u64() as $t);
                }
                Some(start.wrapping_add(rng.below(span + 1) as $t))
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start as f64
                    + rng.unit_f64() * (self.end as f64 - self.start as f64);
                Some((v as $t).clamp(self.start, <$t>::from_bits(self.end.to_bits().wrapping_sub(1))))
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let v = start as f64 + rng.unit_f64_closed() * (end as f64 - start as f64);
                Some((v as $t).clamp(start, end))
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($s,)+) = self;
                Some(($($s.generate(rng)?,)+))
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// `Just` — always the same value (requires `Clone`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}
