//! Test-runner support types: configuration, RNG, case errors.

/// Subset of proptest's config: only `cases` is honored.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw a fresh case.
    Reject,
    /// `prop_assert!` failed; the test fails with this message.
    Fail(String),
}

/// SplitMix64 generator seeded from a stable hash of the test name, so
/// every run of a given test sees the same case sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the fully qualified test name.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..bound` (`bound` = 0 returns 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[0, 1]`.
    pub fn unit_f64_closed(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
    }
}
