//! Offline stand-in for `proptest`.
//!
//! Supports the subset the Galactos property tests use: the
//! `proptest!` macro (with optional `#![proptest_config(..)]`), range
//! strategies over ints and floats, tuple strategies, `prop_map` /
//! `prop_filter_map`, `collection::vec`, `bool::ANY`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from the real crate: values are sampled uniformly (no
//! edge-case biasing), failing cases are not shrunk (the failing inputs
//! are reported as generated), and each test's RNG seed is a stable
//! hash of its name, so runs are fully deterministic.

pub mod strategy;
pub mod test_runner;

/// Strategies for `bool`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniform `true` / `false`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.next_u64() & 1 == 1)
        }
    }
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: an exact size or a
    /// half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element`-generated values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.below(span.max(1))) as usize;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                // Give filtered element strategies a few tries before
                // rejecting the whole case.
                let mut element = None;
                for _ in 0..16 {
                    if let Some(v) = self.element.generate(rng) {
                        element = Some(v);
                        break;
                    }
                }
                out.push(element?);
            }
            Some(out)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirror of the real prelude's `prop` module alias.
    pub mod prop {
        pub use crate::{bool, collection};
    }
}

/// Generated-case count cap multiplier before giving up on a test whose
/// assumptions reject too much.
#[doc(hidden)]
pub const MAX_REJECT_FACTOR: u32 = 20;

#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_cases! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_cases! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($config:expr)
      $(
          #[test]
          fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
      )*
    ) => {
        $(
            #[test]
            fn $name() {
                #![allow(unused_mut, clippy::redundant_closure_call)]
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                // Evaluate each strategy expression once, bound to the
                // argument's own name (shadowed by the value per case).
                $( let $arg = $strategy; )*
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases * $crate::MAX_REJECT_FACTOR + 1000,
                        "test `{}` rejected too many generated cases",
                        stringify!($name),
                    );
                    $(
                        let $arg = match $crate::strategy::Strategy::generate(&$arg, &mut rng) {
                            Some(v) => v,
                            None => continue,
                        };
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {}
                        Err($crate::test_runner::TestCaseError::Fail(message)) => {
                            panic!(
                                "proptest `{}` failed at case {}: {}",
                                stringify!($name), passed, message,
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {:?} == {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {:?} != {:?}", left, right),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
