//! Offline stand-in for the `bytes` crate.
//!
//! The container has no crates.io access, so the workspace vendors the
//! small API subset Galactos actually uses: a growable write buffer
//! (`BytesMut`) with little-endian `put_*` methods, a frozen immutable
//! buffer (`Bytes`) that derefs to `[u8]`, and a `Buf` read cursor
//! implemented for byte slices. Semantics match the real crate for this
//! subset; zero-copy reference counting is not reproduced (`freeze` is
//! a move, not a refcount split).

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes { data: Vec::new() }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.to_vec() }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A growable byte buffer for encoding.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write cursor: appends values to the end of a buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read cursor: consumes values from the front of a buffer.
///
/// Like the real crate, reading past the end panics; callers are
/// expected to check [`Buf::remaining`] first.
pub trait Buf {
    fn remaining(&self) -> usize;

    /// Copy `dst.len()` bytes out and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(42);
        buf.put_f64_le(-1.5);
        let frozen = buf.freeze();
        let mut cur: &[u8] = &frozen[..];
        assert_eq!(cur.remaining(), 20);
        assert_eq!(cur.get_u32_le(), 0xdead_beef);
        assert_eq!(cur.get_u64_le(), 42);
        assert_eq!(cur.get_f64_le(), -1.5);
        assert_eq!(cur.remaining(), 0);
    }
}
