//! Offline stand-in for `crossbeam`.
//!
//! Provides the `channel` module subset the cluster simulator uses:
//! unbounded MPMC channels whose `Sender` and `Receiver` are both
//! `Send + Sync + Clone`, with blocking `recv` that fails once every
//! sender is gone and the queue is drained. Built on `Mutex` +
//! `Condvar`; throughput is adequate for the in-process rank fabric.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    ///
    /// The fabric keeps channels alive for the whole run, so this is
    /// only observed on shutdown races; the payload is handed back like
    /// the real crate does.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender has been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    pub struct Sender<T>(Arc<Inner<T>>);

    pub struct Receiver<T>(Arc<Inner<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::Relaxed);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they can fail.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            q.push_back(value);
            drop(q);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .0
                    .ready
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn try_recv(&self) -> Option<T> {
            self.0
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&inner)), Receiver(inner))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::scope(|s| {
                s.spawn(move || tx.send(1u32).unwrap());
                s.spawn(move || tx2.send(2u32).unwrap());
                let a = rx.recv().unwrap();
                let b = rx.recv().unwrap();
                assert_eq!(a + b, 3);
            });
        }

        #[test]
        fn recv_fails_after_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
