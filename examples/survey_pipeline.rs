//! A survey-style end-to-end pipeline: mask, randoms, data-minus-randoms
//! weighting, radial line of sight, edge correction and jackknife errors
//! — the full analysis loop the paper describes in §6.1.
//!
//! ```text
//! cargo run --release --example survey_pipeline
//! ```

use galactos::analysis::chi2::{detection_snr, project_components};
use galactos::analysis::covariance::jackknife_from_partials;
use galactos::core::edge::edge_corrected;
use galactos::core::isotropic::isotropic_multipoles;
use galactos::mocks::cluster_process::NeymanScott;
use galactos::prelude::*;

fn main() {
    // --- survey geometry: a shell with a hole near the "galactic plane"
    let observer = Vec3::new(60.0, 60.0, -40.0);
    let mut survey = SurveyGeometry::full_shell(observer, 45.0, 110.0);
    survey.holes.push(galactos::catalog::survey::Cap::new(
        Vec3::new(0.2, -0.3, 1.0),
        0.5,
    ));
    survey.radial_completeness = vec![(45.0, 1.0), (110.0, 0.55)];

    // --- "true" sky: a clustered catalog filling a big box
    let clustered = NeymanScott {
        parent_density: 6e-4,
        mean_children: 10.0,
        sigma: 2.0,
    }
    .generate(120.0, 3);
    // Observed data: mask applied (holes + completeness).
    let mut data = survey.apply(&clustered, 17);
    data.periodic = None;
    // Random catalog Monte-Carlo sampling the same geometry, 3x denser.
    let randoms = survey.sample_randoms(3 * data.len(), 23);
    println!(
        "survey data: {} galaxies; randoms: {} points",
        data.len(),
        randoms.len()
    );

    // --- data-minus-randoms field, radial line of sight
    let field = Catalog::data_minus_randoms(&data, &randoms);
    let lmax = 3;
    let bins = RadialBins::linear(2.0, 26.0, 6);

    // NNN: multipoles of the weighted field; RRR: window multipoles.
    let nnn = isotropic_multipoles(&field.galaxies, &bins, lmax, None, false);
    let rrr = isotropic_multipoles(&randoms.galaxies, &bins, lmax, None, false);

    // --- edge correction: invert the window mixing matrix per bin pair
    let corrected = edge_corrected(&nnn, &rrr, 2);
    println!("\nedge-corrected isotropic 3PCF coefficients zeta_l(r, r):");
    println!("{:>7} {:>12} {:>12} {:>12}", "r", "l=0", "l=1", "l=2");
    for b in 0..bins.nbins() {
        println!(
            "{:>7.1} {:>12.4e} {:>12.4e} {:>12.4e}",
            bins.center(b),
            corrected.get(0, b, b),
            corrected.get(1, b, b),
            corrected.get(2, b, b)
        );
    }

    // --- jackknife covariance from spatial regions (paper §6.1)
    // Partition the survey volume into octants about the observer and
    // compute per-region anisotropic partials.
    let mut config = EngineConfig::test_default(26.0, 2, 4);
    config.line_of_sight = LineOfSight::Radial { observer };
    let engine = Engine::new(config);
    // Jackknife the positive-weight data catalog: the per-primary
    // normalization is ill-defined for the zero-weight D-R field.
    let mut partials = Vec::new();
    for octant in 0..8usize {
        let indices: Vec<usize> = data
            .galaxies
            .iter()
            .enumerate()
            .filter(|(_, g)| {
                let rel = g.pos - observer;
                let code = (usize::from(rel.x > 0.0))
                    | (usize::from(rel.y > 0.0) << 1)
                    | (usize::from(rel.z > 0.0) << 2);
                code == octant
            })
            .map(|(i, _)| i)
            .collect();
        if indices.len() < 10 {
            continue;
        }
        let region = data.subset(&indices);
        partials.push(engine.compute(&region));
    }
    println!("\njackknife regions: {}", partials.len());
    let cov = jackknife_from_partials(&partials);

    // Detection significance of the pair moment in a few components.
    let full_vec = galactos::analysis::vectorize::zeta_to_vector(&{
        let mut full = partials[0].clone();
        for p in &partials[1..] {
            full.merge(p);
        }
        full
    });
    // Pick the real parts of (0,0,0) over the diagonal bins.
    let labels = galactos::analysis::vectorize::zeta_labels(&partials[0]);
    let picked: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter(|(_, s)| s.starts_with("re[0,0,0]") && s.ends_with("(2,2)"))
        .map(|(i, _)| i)
        .collect();
    let sub_cov = project_components(&cov, &picked);
    let sub_vec: Vec<f64> = picked.iter().map(|&i| full_vec[i]).collect();
    match detection_snr(&sub_vec, &sub_cov) {
        Some(snr) => println!("pair-moment detection significance (1 component): {snr:.1} sigma"),
        None => println!("covariance singular for the chosen component"),
    }
    println!(
        "\npipeline complete: mask -> randoms -> D-R weighting -> edge correction -> jackknife."
    );
}
