//! A survey-style end-to-end pipeline, the full analysis loop the paper
//! describes in §6.1 — starting from the form in which real survey
//! catalogs actually arrive:
//!
//! sky CSV (RA/Dec/z) → fiducial cosmology → Cartesian catalog →
//! mask-driven randoms (`randfact`) → edge-corrected ζ
//! (`SurveyCompute`) → jackknife errors.
//!
//! ```text
//! cargo run --release --example survey_pipeline
//! ```

use galactos::analysis::chi2::{detection_snr, project_components};
use galactos::mocks::cluster_process::NeymanScott;
use galactos::prelude::*;

fn main() {
    // --- survey geometry: a shell around the observer with a hole near
    // the "galactic plane" and a radial completeness ramp. The observer
    // sits at the ORIGIN — the frame every sky-ingested catalog uses.
    let observer = Vec3::ZERO;
    let mut survey = SurveyGeometry::full_shell(observer, 45.0, 110.0);
    survey.holes.push(Cap::new(Vec3::new(0.2, -0.3, 1.0), 0.5));
    survey.radial_completeness = vec![(45.0, 1.0), (110.0, 0.55)];

    // --- mock the *published* catalog: cluster a box centered on the
    // observer, mask it, and write it out as the sky CSV a survey would
    // release (RA/Dec in degrees, redshift under a fiducial cosmology).
    let mut clustered = NeymanScott {
        parent_density: 6e-4,
        mean_children: 10.0,
        sigma: 2.0,
    }
    .generate(240.0, 3);
    clustered.periodic = None;
    clustered.translate(Vec3::splat(-120.0));
    let mut truth = survey.apply(&clustered, 17);
    truth.recompute_bounds();
    let cosmo = FiducialCosmology::boss_fiducial();
    let csv = std::env::temp_dir().join("galactos_survey_pipeline.csv");
    write_sky_csv(&truth, &csv, &cosmo).expect("writing sky CSV");

    // --- ingest: RA/DEC/Z columns (any case/order), redshifts turned
    // into comoving h⁻¹ Mpc distances by the same fiducial cosmology.
    let data = read_sky_csv(&csv, &cosmo).expect("reading sky CSV");
    std::fs::remove_file(&csv).ok();
    // Random catalog Monte-Carlo sampling the same geometry, sized at
    // randfact = 3 × the data (survey practice: 2–3×).
    let randoms = survey.sample_randoms_for(&data, 3, 23);
    println!(
        "survey data: {} galaxies (ingested from sky CSV); randoms: {} points",
        data.len(),
        randoms.len()
    );

    // --- the edge-corrected estimator behind one entry point:
    // D−R engine run, window multipoles from the randoms alone, and
    // the per-bin-pair mixing-matrix solve (Slepian & Eisenstein
    // 1709.10150). Radial line of sight about the same observer.
    let config = SurveyConfig::survey_default(observer, 26.0, 3, 6);
    let bins = config.engine.bins.clone();
    let compute = SurveyCompute::new(config);
    let result = compute.compute(&data, &randoms);

    println!("\nedge-corrected isotropic 3PCF coefficients zeta_l(r, r):");
    println!("{:>7} {:>12} {:>12} {:>12}", "r", "l=0", "l=1", "l=2");
    for b in 0..bins.nbins() {
        println!(
            "{:>7.1} {:>12.4e} {:>12.4e} {:>12.4e}",
            bins.center(b),
            result.corrected.get(0, b, b),
            result.corrected.get(1, b, b),
            result.corrected.get(2, b, b)
        );
    }

    // --- jackknife covariance from spatial regions (paper §6.1):
    // partition the survey volume into octants about the observer and
    // compute per-region anisotropic partials with the same engine.
    // Jackknife the positive-weight data catalog: the per-primary
    // normalization is ill-defined for the zero-weight D−R field.
    let engine = compute.engine();
    let mut partials = Vec::new();
    for octant in 0..8usize {
        let indices: Vec<usize> = data
            .galaxies
            .iter()
            .enumerate()
            .filter(|(_, g)| {
                let rel = g.pos - observer;
                let code = (usize::from(rel.x > 0.0))
                    | (usize::from(rel.y > 0.0) << 1)
                    | (usize::from(rel.z > 0.0) << 2);
                code == octant
            })
            .map(|(i, _)| i)
            .collect();
        if indices.len() < 10 {
            continue;
        }
        let region = data.subset(&indices);
        partials.push(engine.compute(&region));
    }
    println!("\njackknife regions: {}", partials.len());
    let cov = jackknife_from_partials(&partials);

    // Detection significance of the pair moment in a few components.
    let full_vec = galactos::analysis::vectorize::zeta_to_vector(&{
        let mut full = partials[0].clone();
        for p in &partials[1..] {
            full.merge(p);
        }
        full
    });
    // Pick the real parts of (0,0,0) over the diagonal bins.
    let labels = galactos::analysis::vectorize::zeta_labels(&partials[0]);
    let picked: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter(|(_, s)| s.starts_with("re[0,0,0]") && s.ends_with("(2,2)"))
        .map(|(i, _)| i)
        .collect();
    let sub_cov = project_components(&cov, &picked);
    let sub_vec: Vec<f64> = picked.iter().map(|&i| full_vec[i]).collect();
    match detection_snr(&sub_vec, &sub_cov) {
        Some(snr) => println!("pair-moment detection significance (1 component): {snr:.1} sigma"),
        None => println!("covariance singular for the chosen component"),
    }
    println!(
        "\npipeline complete: sky CSV -> cosmology -> mask randoms -> D-R weighting -> \
         edge correction -> jackknife."
    );
}
