//! Out-of-core distributed execution: shard a catalog to disk as GCAT
//! v2, then compute the 3PCF with every rank streaming only its own
//! shards plus its halo neighbors — no rank ever holds the catalog.
//!
//! ```text
//! cargo run --release --example sharded_pipeline
//! ```

use galactos::catalog::shard::MANIFEST_FILE;
use galactos::domain::shard::{distribute_from_shards, write_sharded};
use galactos::mocks::cluster_process::NeymanScott;
use galactos::prelude::*;

fn main() {
    // A clustered mock standing in for a survey catalog too big to fit
    // on one node (scaled down so the example runs in seconds).
    let mut catalog = NeymanScott {
        parent_density: 1.0e-3,
        mean_children: 10.0,
        sigma: 2.0,
    }
    .generate(80.0, 11);
    catalog.periodic = None;
    println!("catalog: {} galaxies in an 80 Mpc/h box", catalog.len());

    // 1. Shard to disk along the recursive-bisection partition. In
    //    production this happens once, at catalog creation; here we
    //    write 16 shards into a temp directory.
    let dir = std::env::temp_dir().join("galactos_sharded_pipeline_example");
    std::fs::remove_dir_all(&dir).ok();
    let num_shards = 16;
    let manifest = write_sharded(&catalog, num_shards, &dir).expect("write shards");
    println!(
        "wrote {num_shards} shards + manifest ({} records, checksummed)",
        manifest.total_count
    );

    // 2. Peek at what one rank of four would actually load: its own
    //    shards (primaries) plus ghosts from halo-intersecting
    //    neighbor shards, streamed in bounded-memory chunks.
    let rmax = 12.0;
    println!("\nper-rank ingestion at 4 ranks (rmax = {rmax}):");
    println!(
        "{:>5} {:>8} {:>8} {:>14} {:>12}",
        "rank", "owned", "ghosts", "records read", "bytes read"
    );
    for rank in 0..4 {
        let rd = distribute_from_shards(&dir, &manifest, rank, 4, rmax).expect("ingest");
        println!(
            "{:>5} {:>8} {:>8} {:>14} {:>12}",
            rank,
            rd.owned.len(),
            rd.ghosts.len(),
            rd.records_read,
            rd.bytes_read
        );
        assert!(rd.resident() < catalog.len(), "no rank holds the catalog");
    }

    // 3. The full pipeline: identical multipoles to the in-memory
    //    scatter path and the single-process engine.
    let config = EngineConfig::test_default(rmax, 3, 5);
    let manifest_path = dir.join(MANIFEST_FILE);
    let sharded = compute_distributed_sharded(&manifest_path, &config, 4).expect("pipeline");
    let single = Engine::new(config.clone()).compute(&catalog);
    let scale = single.max_abs().max(1.0);
    let diff = sharded.zeta.max_difference(&single) / scale;
    println!(
        "\nsharded (4 ranks) vs single-process: rel diff {diff:.2e}, \
         {} binned pairs, 0 bytes over the fabric",
        sharded.zeta.binned_pairs
    );
    assert!(diff < 1e-9);

    std::fs::remove_dir_all(&dir).ok();
}
