//! Redshift-space distortions light up the anisotropic multipoles.
//!
//! The entire point of the *anisotropic* 3PCF (paper §1.1–1.2): galaxy
//! peculiar velocities distort the line-of-sight positions, breaking
//! the isotropy of clustering; the growth rate of structure — a test of
//! General Relativity — is encoded in the anisotropic multipoles. This
//! example measures ζ^m on the same lognormal mock in real space and in
//! redshift space and shows the m-spectrum change.
//!
//! ```text
//! cargo run --release --example rsd_anisotropy
//! ```

use galactos::mocks::lognormal;
use galactos::mocks::rsd::RsdParams;
use galactos::prelude::*;

fn main() {
    // Amplitude chosen for a Gaussian-field sigma of order unity: much
    // larger values make exp(G) collapse all mass into a few cells
    // (a degenerate lognormal mock).
    let spectrum = PowerLawSpectrum {
        amplitude: 8.0,
        index: -1.2,
    };
    let mesh = 64;
    let box_len = 100.0;
    let n_gal = 5_000;

    // Real-space mock and its redshift-space twin (same seed → same
    // underlying density field; only the z coordinates differ).
    let real = lognormal::generate(&spectrum, mesh, box_len, n_gal, 11, None);
    let kaiser = RsdParams::kaiser(1.2);
    let redshift = lognormal::generate(&spectrum, mesh, box_len, n_gal, 11, Some(kaiser));
    println!(
        "real-space: {} galaxies; redshift-space: {} galaxies",
        real.catalog.len(),
        redshift.catalog.len()
    );

    let mut config = EngineConfig::test_default(25.0, 4, 5);
    config.subtract_self_pairs = true;
    let engine = Engine::new(config);

    let z_real = engine.compute(&real.catalog).normalized();
    let z_red = engine.compute(&redshift.catalog).normalized();

    // Quadrupole-like statistic: the (l, l') = (2, 0) coefficient
    // measures the correlation between an l=2 shell pattern (aligned
    // with the line of sight after the frame rotation) and the
    // monopole. It vanishes in expectation for isotropic clustering.
    println!("\n(l,l',m) = (2,0,0) coefficient over diagonal bins:");
    println!("{:>7} {:>14} {:>14}", "r", "real space", "redshift space");
    let bins = &engine.config().bins;
    let mut real_sum = 0.0f64;
    let mut red_sum = 0.0f64;
    for b in 0..bins.nbins() {
        let vr = z_real.get(2, 0, 0, b, b).re;
        let vs = z_red.get(2, 0, 0, b, b).re;
        real_sum += vr.abs();
        red_sum += vs.abs();
        println!("{:>7.1} {:>14.5e} {:>14.5e}", bins.center(b), vr, vs);
    }
    println!(
        "\nsummed |quadrupole-monopole coupling|: real {real_sum:.4e} vs redshift {red_sum:.4e}"
    );
    if red_sum > real_sum {
        println!("RSD enhanced the anisotropic coupling, as the Kaiser effect predicts.");
    } else {
        println!(
            "warning: no enhancement detected — try a larger catalog or stronger growth rate."
        );
    }

    // The isotropic part barely changes by comparison (it only picks up
    // the monopole boost).
    let k_real = z_real.compress_isotropic();
    let k_red = z_red.compress_isotropic();
    let b_mid = bins.nbins() / 2;
    println!(
        "\nisotropic K_0 at r = {:.1}: real {:.4e}, redshift {:.4e}",
        bins.center(b_mid),
        k_real.get(0, b_mid, b_mid),
        k_red.get(0, b_mid, b_mid)
    );
}
