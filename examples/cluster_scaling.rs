//! Distributed execution walk-through: partition a catalog over
//! simulated ranks, run the halo exchange, compute per-rank, reduce —
//! and verify against the single-process answer (paper §3.2).
//!
//! ```text
//! cargo run --release --example cluster_scaling
//! ```

use galactos::domain::load::primary_balance;
use galactos::domain::{pair_counts, DomainPlan};
use galactos::mocks::cluster_process::NeymanScott;
use galactos::prelude::*;

use galactos::domain::load::LoadBalance;

fn main() {
    // A clustered catalog — clustering is what makes load balance hard.
    let mut catalog = NeymanScott {
        parent_density: 1.2e-3,
        mean_children: 10.0,
        sigma: 2.0,
    }
    .generate(80.0, 5);
    catalog.periodic = None;
    println!("catalog: {} galaxies in an 80 Mpc/h box", catalog.len());

    let rmax = 16.0;
    let positions = catalog.positions();

    // --- partition quality across rank counts (incl. non-powers of two)
    println!("\npartition quality (rmax = {rmax}):");
    println!(
        "{:>6} {:>12} {:>14} {:>12} {:>12}",
        "ranks", "primaries", "prim imbal %", "pairs var %", "efficiency"
    );
    for ranks in [2usize, 3, 5, 8, 13] {
        let plan = DomainPlan::build(&positions, catalog.bounds, ranks);
        let prim = primary_balance(&plan);
        let pairs = LoadBalance::from_counts(pair_counts(&plan, &positions, rmax));
        println!(
            "{:>6} {:>12} {:>14.2} {:>12.1} {:>12.2}",
            ranks,
            prim.per_rank.iter().map(|&v| v as usize).sum::<usize>(),
            prim.imbalance() * 100.0,
            pairs.variation() * 100.0,
            pairs.efficiency(),
        );
    }

    // --- full distributed run vs single process
    let config = EngineConfig::test_default(rmax, 3, 5);
    let single = Engine::new(config.clone()).compute(&catalog);
    println!("\nsingle-process: {} binned pairs", single.binned_pairs);

    for ranks in [3usize, 6] {
        let run = compute_distributed(&catalog, &config, ranks);
        let diff = run.zeta.max_difference(&single);
        println!("\n{ranks}-rank distributed run:");
        println!(
            "{:>6} {:>10} {:>10} {:>14}",
            "rank", "owned", "ghosts", "binned pairs"
        );
        for r in &run.ranks {
            println!(
                "{:>6} {:>10} {:>10} {:>14}",
                r.rank, r.owned, r.ghosts, r.binned_pairs
            );
        }
        println!(
            "reduction matches single process to {:.2e} (scale {:.2e})",
            diff,
            single.max_abs()
        );
        assert!(diff < 1e-9 * single.max_abs().max(1.0));
    }
    println!("\ndistributed pipeline reproduces the single-process result exactly.");
}
