//! Quickstart: compute the anisotropic 3PCF of a clustered mock and
//! print the leading multipoles.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use galactos::mocks::cluster_process::NeymanScott;
use galactos::prelude::*;

fn main() {
    // 1. A clustered galaxy catalog (Neyman–Scott process: Poisson
    //    cluster centers dressed with Gaussian satellites), standing in
    //    for a simulation snapshot.
    let box_len = 100.0;
    let catalog = NeymanScott {
        parent_density: 4e-4,
        mean_children: 12.0,
        sigma: 2.5,
    }
    .generate(box_len, 7);
    println!(
        "catalog: {} galaxies in a periodic {box_len} Mpc/h box",
        catalog.len()
    );

    // 2. Engine configuration: multipoles to lmax=4, 8 radial bins out
    //    to 30 Mpc/h, plane-parallel line of sight along z (the paper's
    //    setup for simulation boxes), mixed precision, SIMD kernel.
    let mut config = EngineConfig::test_default(30.0, 4, 8);
    config.precision = TreePrecision::Mixed;
    config.subtract_self_pairs = true;

    // 3. Compute.
    let engine = Engine::new(config);
    let t0 = std::time::Instant::now();
    let zeta = engine.compute(&catalog).normalized();
    println!(
        "computed {} binned pairs in {:.2?}",
        zeta.binned_pairs,
        t0.elapsed()
    );

    // 4. Inspect: the isotropic compression ζ_l(r1, r2) on the diagonal.
    let iso = zeta.compress_isotropic();
    println!("\nisotropic multipoles K_l(r, r) per primary (diagonal bins):");
    println!("{:>6} {:>12} {:>12} {:>12}", "r", "l=0", "l=1", "l=2");
    let bins = &engine.config().bins;
    for b in 0..bins.nbins() {
        println!(
            "{:>6.1} {:>12.4e} {:>12.4e} {:>12.4e}",
            bins.center(b),
            iso.get(0, b, b),
            iso.get(1, b, b),
            iso.get(2, b, b),
        );
    }

    // 5. Anisotropic coefficients: for this isotropic mock the m > 0
    //    spins carry only noise — compare their size to the m = 0 signal.
    let b = bins.nbins() / 2;
    println!("\nanisotropic spin spectrum at (l, l') = (2, 2), bin ({b}, {b}):");
    for m in 0..=2 {
        let v = zeta.get(2, 2, m, b, b);
        println!("  m={m}: |zeta| = {:.4e}", v.abs());
    }
    println!("\n(l=0 pair moment should dominate; this catalog has no RSD,");
    println!(" so spins m>0 are consistent with noise — see the rsd_anisotropy");
    println!(" example for a catalog where they are not.)");
}
