//! BAO in the 3PCF: compare lognormal mocks generated with and without
//! baryon acoustic oscillation wiggles in the input power spectrum, and
//! show the excess correlation near the acoustic scale — a laptop-scale
//! rendition of the physics behind the paper's Figure 1 heat map.
//!
//! ```text
//! cargo run --release --example bao_detection
//! ```

use galactos::mocks::lognormal;
use galactos::prelude::*;

fn main() {
    // Scaled-down acoustic scale so it fits a tractable box: put the
    // BAO bump at 22 Mpc/h inside a 128 Mpc/h box (the real Universe's
    // 105 Mpc/h in a 3000 Mpc/h box is the same geometry, 25x larger).
    let bao = BaoSpectrum {
        amplitude: 8.0e3,
        ns: 0.96,
        k_eq: 0.07,
        r_bao: 22.0,
        a_bao: 0.35,
        k_silk: 0.5,
    };
    let smooth = bao.no_wiggle();
    let mesh = 64;
    let box_len = 128.0;
    let n_gal = 6_000;

    let mut config = EngineConfig::test_default(30.0, 2, 10);
    config.subtract_self_pairs = true;
    let engine = Engine::new(config);
    let bins = engine.config().bins.clone();

    // Average the isotropic 2PCF-like moment over several realizations
    // to beat sample variance (the paper's "hundreds of mocks" story,
    // §6.1, at toy scale).
    let n_mocks = 4;
    let mut with_bao = vec![0.0f64; bins.nbins()];
    let mut without = vec![0.0f64; bins.nbins()];
    for seed in 0..n_mocks {
        let a = lognormal::generate(&bao, mesh, box_len, n_gal, 100 + seed, None);
        let b = lognormal::generate(&smooth, mesh, box_len, n_gal, 100 + seed, None);
        println!(
            "mock {seed}: {} galaxies (BAO), {} galaxies (no BAO)",
            a.catalog.len(),
            b.catalog.len()
        );
        let za = engine.compute(&a.catalog).normalized().compress_isotropic();
        let zb = engine.compute(&b.catalog).normalized().compress_isotropic();
        // Density normalization: divide the pair moment by shell volume
        // and mean density to approximate 1 + ξ.
        let da = a.catalog.len() as f64 / box_len.powi(3);
        let db = b.catalog.len() as f64 / box_len.powi(3);
        for bin in 0..bins.nbins() {
            let va =
                za.get(0, bin, bin) / (bins.shell_volume(bin) * da) * (4.0 * std::f64::consts::PI);
            let vb =
                zb.get(0, bin, bin) / (bins.shell_volume(bin) * db) * (4.0 * std::f64::consts::PI);
            with_bao[bin] += va / n_mocks as f64;
            without[bin] += vb / n_mocks as f64;
        }
    }

    println!("\nshell-normalized pair moment (∝ (1+ξ)² per shell):");
    println!(
        "{:>7} {:>12} {:>12} {:>10}",
        "r", "with BAO", "no BAO", "ratio"
    );
    let mut peak_r = 0.0;
    let mut peak_ratio = 0.0f64;
    for b in 0..bins.nbins() {
        let ratio = with_bao[b] / without[b];
        let r = bins.center(b);
        // Track the strongest excess beyond half the acoustic scale.
        if r > 12.0 && ratio > peak_ratio {
            peak_ratio = ratio;
            peak_r = r;
        }
        println!(
            "{:>7.1} {:>12.5} {:>12.5} {:>10.4}",
            r, with_bao[b], without[b], ratio
        );
    }
    println!(
        "\nstrongest large-scale excess at r = {peak_r:.1} Mpc/h (input acoustic scale: {:.1})",
        bao.r_bao
    );
    println!("the wiggle catalog shows excess clustering near the acoustic scale —");
    println!("the same physics as the BAO features in the paper's Figure 1.");
}
